"""The service's persistent worker pool.

Workers hold *warm* pipelines: a :class:`~repro.core.pipeline.LPOPipeline`
(client, knowledge base, step cache) is constructed once per worker per
``(model, attempt_limit)`` and reused for every subsequent job — the
amortization the one-shot ``batch`` command cannot offer.  The client
is whatever the job's *model spec* resolves to through
:func:`repro.llm.backends.resolve_backend` (a simulated profile or an
OpenAI-compatible HTTP endpoint), and each job payload piggybacks the
backend's cumulative call/retry/latency counters back to the server.

* ``thread`` backend — one pipeline per ``(model, attempt_limit)``
  shared by all worker threads (the pipeline is thread-safe); the step
  cache can be the service's shared
  :class:`~repro.core.cache.ShardedResultCache`.
* ``process`` backend — each worker process lazily builds its own
  pipelines in module state installed by the pool initializer; jobs
  cross the pickle boundary as small :class:`JobSpec` payloads only.

A broken pool (a worker died hard) surfaces as
:class:`WorkerCrashError`; the server requeues the job and calls
:meth:`WorkerPool.restart`.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Dict, Optional, Tuple

from repro.core.pipeline import LPOPipeline, PipelineConfig
from repro.core.pipeline import window_from_text
from repro.errors import ReproError
from repro.service.protocol import JobSpec

BACKENDS = ("thread", "process")


class WorkerCrashError(ReproError):
    """The worker pool died under a job (e.g. a killed process)."""


def _pipeline_for_spec(model: str, attempt_limit: int,
                       llm_seed: int, cache=None) -> LPOPipeline:
    """Build a warm pipeline whose client comes from the one
    model-resolution path (``sim:``/bare-name/``http://`` specs all
    land here); unknown specs raise the registry's typed error."""
    from repro.llm.backends import resolve_backend
    return LPOPipeline(resolve_backend(model, seed=llm_seed),
                       PipelineConfig(attempt_limit=attempt_limit),
                       cache=cache)


def _run_spec(pipeline: LPOPipeline, spec: JobSpec,
              backend_key: str) -> dict:
    """Run one job on a resident pipeline; returns a JSON-safe payload
    (the ``_CACHED_KEYS`` subset is the exact dict the job cache
    stores; ``backend``/``backend_key`` piggyback the backend's
    *cumulative* call/retry/latency counters so the server can fold
    them into :class:`~repro.service.metrics.ServiceMetrics`)."""
    window = window_from_text(spec.ir)
    result = pipeline.optimize_window(window,
                                      round_seed=spec.round_seed)
    payload = {
        "found": result.found,
        "status": result.status,
        "candidate_text": result.candidate_text,
        "elapsed_seconds": result.elapsed_seconds,
        "attempts": len(result.attempts),
    }
    stats = getattr(pipeline.client, "stats", None)
    if stats is not None:
        payload["backend"] = stats.snapshot()
        payload["backend_key"] = backend_key
    return payload


# -- process-backend worker state ------------------------------------------
#: Per-process pipelines + construction count, installed by
#: :func:`_process_worker_init` (reset after fork via the pid check).
_PROCESS_STATE: dict = {}


def _process_worker_init(llm_seed: int) -> None:
    if _PROCESS_STATE.get("pid") != os.getpid():
        _PROCESS_STATE.clear()
        _PROCESS_STATE["pid"] = os.getpid()
    _PROCESS_STATE["llm_seed"] = llm_seed
    _PROCESS_STATE.setdefault("pipelines", {})
    _PROCESS_STATE.setdefault("constructions", 0)


def _process_worker_run(spec: JobSpec) -> dict:
    pipelines: dict = _PROCESS_STATE["pipelines"]
    key = (spec.model, spec.attempt_limit)
    if key not in pipelines:
        pipelines[key] = _pipeline_for_spec(
            spec.model, spec.attempt_limit, _PROCESS_STATE["llm_seed"])
        _PROCESS_STATE["constructions"] += 1
    # Backend counters are per process-local pipeline, so the key must
    # carry the pid for the server's max-merge to stay monotonic.
    payload = _run_spec(
        pipelines[key], spec,
        backend_key=(f"pid-{os.getpid()}|{spec.model}|"
                     f"{spec.attempt_limit}"))
    payload["worker"] = f"pid-{os.getpid()}"
    payload["pipeline_constructions"] = _PROCESS_STATE["constructions"]
    return payload


class WorkerPool:
    """A persistent executor whose workers keep pipelines warm."""

    def __init__(self, jobs: int = 2, backend: str = "thread",
                 llm_seed: int = 0, cache=None):
        if backend not in BACKENDS:
            raise ValueError(f"unknown worker backend {backend!r}; "
                             f"choose from {BACKENDS}")
        self.jobs = max(1, int(jobs))
        self.backend = backend
        self.llm_seed = llm_seed
        #: Shared step cache for thread-backend pipelines (e.g. the
        #: service's ShardedResultCache); process workers keep their own.
        self.cache = cache
        self._lock = threading.Lock()
        #: Serializes executor replacement against submits — concurrent
        #: restart() calls must never hand a submit a just-shut-down
        #: executor object without converting the failure.
        self._executor_lock = threading.Lock()
        self._pipelines: Dict[Tuple[str, int], LPOPipeline] = {}
        self._constructions = 0
        self._executor = None
        self.start()

    # -- lifecycle ---------------------------------------------------------
    def _make_executor(self):
        if self.backend == "process":
            return ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_process_worker_init,
                initargs=(self.llm_seed,))
        return ThreadPoolExecutor(
            max_workers=self.jobs, thread_name_prefix="repro-worker")

    def start(self) -> None:
        with self._executor_lock:
            self._executor = self._make_executor()

    def restart(self) -> None:
        """Replace a broken executor (thread pipelines stay warm)."""
        with self._executor_lock:
            old = self._executor
            self._executor = self._make_executor()
        if old is not None:
            old.shutdown(wait=False)

    def shutdown(self, wait: bool = True) -> None:
        with self._executor_lock:
            executor = self._executor
        if executor is not None:
            executor.shutdown(wait=wait)

    # -- job execution -----------------------------------------------------
    @staticmethod
    def is_crash(exc: Optional[BaseException]) -> bool:
        """Does this failure mean "the pool died", not "the job is bad"?"""
        return isinstance(exc, (BrokenExecutor, WorkerCrashError))

    def submit(self, spec: JobSpec) -> Future:
        """Queue one job on the pool; raises :class:`WorkerCrashError`
        when the pool is already broken (or mid-replacement) at submit
        time."""
        with self._executor_lock:
            executor = self._executor
        try:
            if self.backend == "process":
                return executor.submit(_process_worker_run, spec)
            return executor.submit(self._thread_run, spec)
        except (BrokenExecutor, RuntimeError) as exc:
            # RuntimeError: the executor we grabbed was shut down by a
            # concurrent restart() — same recovery as a broken pool.
            raise WorkerCrashError(f"worker pool broken: {exc}") from exc

    def run(self, spec: JobSpec) -> dict:
        """Blocking convenience wrapper around :meth:`submit`."""
        future = self.submit(spec)
        try:
            return future.result()
        except BrokenExecutor as exc:
            raise WorkerCrashError(f"worker pool broken: {exc}") from exc

    def _pipeline(self, model: str, attempt_limit: int) -> LPOPipeline:
        key = (model, attempt_limit)
        with self._lock:
            pipeline = self._pipelines.get(key)
            if pipeline is None:
                pipeline = _pipeline_for_spec(
                    model, attempt_limit, self.llm_seed,
                    cache=self.cache)
                self._pipelines[key] = pipeline
                self._constructions += 1
        return pipeline

    def _thread_run(self, spec: JobSpec) -> dict:
        pipeline = self._pipeline(spec.model, spec.attempt_limit)
        # One shared pipeline (and backend) per (model, attempt_limit)
        # across all threads — one cumulative counter key to match.
        payload = _run_spec(
            pipeline, spec,
            backend_key=f"thread|{spec.model}|{spec.attempt_limit}")
        payload["worker"] = threading.current_thread().name
        payload["pipeline_constructions"] = self._constructions
        return payload

    @property
    def pipeline_constructions(self) -> int:
        """Thread backend: exact pool-wide construction count.  Process
        backend: per-worker counts arrive in each job payload instead
        (``pipeline_constructions`` key)."""
        return self._constructions
