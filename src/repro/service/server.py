"""The long-lived optimization service and its socket front end.

:class:`OptimizationService` is the in-process daemon: a bounded job
queue (backpressure), a dispatcher thread that serves repeats from the
sharded job cache and fans misses over the persistent
:class:`~repro.service.workers.WorkerPool`, per-job completion events,
and :class:`~repro.service.metrics.ServiceMetrics` accounting.  Worker
crashes requeue the job (bounded by ``max_retries``) after the pool is
rebuilt.

:meth:`OptimizationService.run_campaign` runs a whole multi-round
experiment (:class:`~repro.service.protocol.CampaignSpec`) as one
service job: every leg/round expands into per-window jobs scheduled
through the same queue, with campaign-level progress (visible in
``status()``), metrics, and an aggregated detection matrix.

:class:`ServiceServer` wraps a service in an asyncio JSON-lines TCP
acceptor (the ``repro serve`` command): submits may be pipelined per
connection and results stream back tagged with the client's job id;
``campaign`` messages run server-side and reply with the aggregate.
"""

from __future__ import annotations

import asyncio
import functools
import itertools
import queue
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Callable, Dict, Optional

from repro import obs, profile
from repro.core.cache import DEFAULT_MAX_ENTRIES, ShardedResultCache
from repro.core.executor import resolve_backend
from repro.errors import ReproError, ServiceBusyError
from repro.service.campaign import (
    CampaignLeg,
    RoundOutcome,
    campaign_legs,
    execute_campaign,
)
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    CampaignResult,
    CampaignSpec,
    JobResult,
    JobSpec,
    ProtocolError,
    campaign_digest,
    campaign_from_wire,
    campaign_result_to_wire,
    decode_line,
    encode_line,
    job_digest,
    probe_from_wire,
    result_to_wire,
    spec_from_wire,
)
from repro.service.workers import (
    BACKENDS as WORKER_BACKENDS,
    WorkerCrashError,
    WorkerPool,
)

#: Queue sentinel that stops the dispatcher.
_SHUTDOWN = object()

#: Payload keys a worker result contributes to the job cache entry.
_CACHED_KEYS = ("found", "status", "candidate_text", "elapsed_seconds",
                "attempts")

#: Max bytes per wire line (asyncio's default 64 KiB is too small for
#: large extracted windows).
_WIRE_LIMIT = 4 * 1024 * 1024


# ServiceBusyError moved to repro.errors (stable ``code="busy"``, one
# catchable hierarchy); imported back above so its historical home here
# keeps exporting it.

class OptimizationService:
    """A persistent, cache-fronted job service around the LPO loop."""

    def __init__(self, jobs: int = 2, backend: Optional[str] = None,
                 queue_limit: int = 128, max_retries: int = 2,
                 cache_shards: int = 16,
                 cache_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
                 cache_age_seconds: Optional[float] = None,
                 cache_path=None, llm_seed: int = 0,
                 default_model: str = "",
                 logger: Optional[obs.StructuredLogger] = None,
                 slow_job_seconds: Optional[float] = 10.0):
        # ``backend=None`` resolves through the shared executor layer
        # (process by default; REPRO_EXECUTOR_BACKEND overrides).
        backend = resolve_backend(backend, WORKER_BACKENDS)
        self.backend = backend
        #: Structured-event sink for the job lifecycle (falls back to
        #: the process default, which is disabled until configured).
        self.log = logger if logger is not None else obs.default()
        #: Fresh jobs slower than this emit a ``job.slow`` event with
        #: their span breakdown (``None`` disables the slow-job log).
        self.slow_job_seconds = slow_job_seconds
        # The default fills jobs submitted with an empty model spec;
        # validate it up front so a misconfigured service fails at
        # startup, not on its first job.
        if default_model:
            from repro.llm.backends import parse_backend_spec
            parse_backend_spec(default_model)
        self.default_model = default_model
        self.cache = ShardedResultCache(shards=cache_shards,
                                        path=cache_path,
                                        max_entries=cache_entries,
                                        max_age_seconds=cache_age_seconds)
        self.metrics = ServiceMetrics()
        # Thread workers share the service's step cache; process workers
        # keep per-process step caches and share only the job cache.
        self.pool = WorkerPool(
            jobs=jobs, backend=backend, llm_seed=llm_seed,
            cache=self.cache if backend == "thread" else None,
            logger=self.log)
        self.max_retries = max(0, int(max_retries))
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_limit)
        self.metrics.bind_queue_depth(self._queue.qsize)
        self._slots = threading.Semaphore(self.pool.jobs)
        self._lock = threading.Lock()
        self._results: Dict[str, JobResult] = {}
        self._events: Dict[str, threading.Event] = {}
        #: Single-flight: digest of each job currently running → specs
        #: of identical jobs waiting to share its result.
        self._pending: Dict[str, list] = {}
        self._worker_constructions: Dict[str, int] = {}
        #: Progress of in-flight campaigns, keyed by campaign id.
        self._campaigns: Dict[str, dict] = {}
        self._campaign_ids = itertools.count(1)
        self._job_ids = itertools.count(1)
        self._outstanding = 0
        self._idle = threading.Condition(self._lock)
        self._closed = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-dispatch",
            daemon=True)
        self._dispatcher.start()
        self.log.info("service.start", backend=self.backend,
                      workers=self.pool.jobs, queue_limit=queue_limit,
                      cache_shards=cache_shards, llm_seed=llm_seed,
                      default_model=default_model)

    # -- submission API ----------------------------------------------------
    def submit(self, spec: JobSpec,
               timeout: Optional[float] = None) -> str:
        """Queue one job; returns its job id.

        ``timeout`` bounds how long to wait for queue space — ``None``
        blocks (backpressure propagates to the caller), ``0`` raises
        :class:`ServiceBusyError` immediately when the queue is full.
        """
        if self._closed:
            raise ReproError("service is closed")
        job_id = spec.job_id or f"job-{next(self._job_ids):06d}"
        spec = replace(spec, job_id=job_id)
        if not spec.model and self.default_model:
            spec = replace(spec, model=self.default_model)
        # The digest is computed once here and rides the queue: the
        # dispatcher, requeues, and every structured event reuse it
        # (it is the correlation key from submit through settle).
        try:
            digest = job_digest(spec, llm_seed=self.pool.llm_seed)
        except Exception:  # noqa: BLE001 — surfaced at dispatch time
            digest = ""
        with self._lock:
            if job_id in self._events or job_id in self._results:
                raise ReproError(f"duplicate job id {job_id!r}")
            self._events[job_id] = threading.Event()
            self._outstanding += 1
        try:
            if timeout == 0:
                self._queue.put_nowait((spec, digest, 0,
                                        time.monotonic()))
            else:
                self._queue.put((spec, digest, 0, time.monotonic()),
                                timeout=timeout)
        except queue.Full:
            with self._lock:
                self._events.pop(job_id, None)
                self._outstanding -= 1
                self._idle.notify_all()
            self.metrics.record_rejected()
            self.log.warning("job.reject", job_id=job_id,
                             digest=digest,
                             queue_limit=self._queue.maxsize)
            raise ServiceBusyError(
                f"job queue full ({self._queue.maxsize} pending); "
                f"retry later") from None
        self.metrics.record_submitted()
        self.log.info("job.submit", job_id=job_id, digest=digest,
                      model=spec.model, round_seed=spec.round_seed,
                      attempt_limit=spec.attempt_limit)
        if self._closed and not self._dispatcher.is_alive():
            # We raced close(): our item may have landed after its
            # straggler drain.  Drain again so no waiter hangs.
            self._fail_stragglers()
        return job_id

    def result(self, job_id: str,
               timeout: Optional[float] = None) -> JobResult:
        """Wait for and consume one job's result."""
        with self._lock:
            event = self._events.get(job_id)
        if event is None:
            raise ReproError(f"unknown job id {job_id!r}")
        if not event.wait(timeout):
            raise ReproError(f"timed out waiting for {job_id!r}")
        with self._lock:
            self._events.pop(job_id, None)
            return self._results.pop(job_id)

    def run(self, spec: JobSpec,
            timeout: Optional[float] = None) -> JobResult:
        """Submit one job and block until its result."""
        return self.result(self.submit(spec), timeout=timeout)

    def run_many(self, specs,
                 timeout: Optional[float] = None) -> list:
        """Submit a batch (blocking on backpressure) and collect results
        in submission order."""
        job_ids = [self.submit(spec) for spec in specs]
        return [self.result(job_id, timeout=timeout)
                for job_id in job_ids]

    # -- campaigns ---------------------------------------------------------
    def run_campaign(self, spec: CampaignSpec,
                     timeout: Optional[float] = None) -> CampaignResult:
        """Run a multi-round campaign to completion.

        Expands the campaign into per-window round jobs scheduled
        through the normal queue — so rounds share the job cache,
        single-flight dedup, backpressure, and crash requeue with
        one-shot submits — and aggregates the detection matrix.
        ``timeout`` bounds each individual job wait, not the campaign.
        """
        spec.validate()
        # One resolution path: every leg's model spec must parse (an
        # unknown sim name or scheme fails here, before any job runs).
        from repro.llm.backends import parse_backend_spec
        for model in spec.models:
            parse_backend_spec(model)
        campaign_id = (spec.campaign_id
                       or f"campaign-{next(self._campaign_ids):04d}")
        digest = campaign_digest(spec, llm_seed=self.pool.llm_seed)
        legs = campaign_legs(spec)
        progress = {
            "campaign_id": campaign_id,
            "digest": digest[:12],
            "legs": len(legs),
            "rounds_total": len(legs) * spec.rounds,
            "rounds_done": 0,
            "detections": 0,
        }
        with self._lock:
            self._campaigns[campaign_id] = progress
        self.metrics.record_campaign_started()
        self.log.info("campaign.start", campaign_id=campaign_id,
                      digest=digest[:12], legs=len(legs),
                      rounds_total=len(legs) * spec.rounds,
                      windows=len(spec.windows))

        def run_round(leg: CampaignLeg, round_index: int,
                      round_seed: int):
            job_specs = [JobSpec(ir=ir, model=leg.model,
                                 round_seed=round_seed,
                                 attempt_limit=leg.attempt_limit)
                         for ir in spec.windows]
            results = self.run_many(job_specs, timeout=timeout)
            return [RoundOutcome(found=r.found, ok=r.ok,
                                 cached=r.cached,
                                 latency_seconds=r.latency_seconds,
                                 error=r.error,
                                 cost_usd=r.cost_usd)
                    for r in results]

        def on_round(leg: CampaignLeg, round_index: int,
                     detections: int) -> None:
            self.metrics.record_campaign_round(detections)
            with self._lock:
                progress["rounds_done"] += 1
                progress["detections"] += detections
            self.log.debug("campaign.round", campaign_id=campaign_id,
                           leg=leg.key, round=round_index,
                           detections=detections)

        def on_budget(leg: CampaignLeg, round_index: int,
                      spend_usd: float) -> None:
            self.log.warning(
                "campaign.budget", campaign_id=campaign_id,
                leg=leg.key, round=round_index,
                spend_usd=round(spend_usd, 6),
                budget_usd=spec.budget_usd)

        ok = False
        result = None
        try:
            result = execute_campaign(
                replace(spec, campaign_id=campaign_id),
                run_round, on_round=on_round, on_budget=on_budget)
            ok = result.ok
        finally:
            with self._lock:
                self._campaigns.pop(campaign_id, None)
            # Also on the exception path (e.g. a job-wait timeout):
            # a started campaign must settle as completed or failed.
            self.metrics.record_campaign_finished(ok=ok)
            self.log.info(
                "campaign.finish", campaign_id=campaign_id, ok=ok,
                detections=progress["detections"],
                rounds_done=progress["rounds_done"],
                failed_jobs=(result.failed_jobs if result is not None
                             else -1),
                spend_usd=(round(result.spend_usd, 6)
                           if result is not None else 0.0),
                budget_exhausted=(result.budget_exhausted
                                  if result is not None else False))
        return result

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted job has finished."""
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._idle:
            while self._outstanding > 0:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def status(self) -> dict:
        """Metrics + pool/cache shape (the ``repro status`` payload)."""
        with self._lock:
            process_constructions = sum(
                self._worker_constructions.values())
            active_campaigns = [dict(progress) for progress
                                in self._campaigns.values()]
        constructions = (self.pool.pipeline_constructions
                         if self.backend == "thread"
                         else process_constructions)
        snapshot = self.metrics.to_dict()
        snapshot["campaigns"]["active"] = active_campaigns
        return {
            **snapshot,
            "backend": self.backend,
            "workers": self.pool.jobs,
            "pipeline_constructions": constructions,
            # Only job: entries — on the thread backend the same
            # sharded store also holds the pipelines' opt/verify steps.
            "job_cache_entries": self.cache.count_prefix("job:"),
            "cache_shards": self.cache.shard_count,
            "step_cache": self.cache.stats.render(),
        }

    def close(self) -> None:
        """Stop the dispatcher, drain in-flight work, shut the pool."""
        if self._closed:
            return
        self._closed = True
        # Never block on a full queue here: with every slot busy the
        # dispatcher can be pinned in _dispatch_one for a while, and a
        # blocking put would deadlock close() against it.  Make room
        # by failing queued jobs instead — the service is closing, so
        # "service closed" is those jobs' honest answer.
        while True:
            try:
                self._queue.put_nowait(_SHUTDOWN)
                break
            except queue.Full:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    continue
                if item is _SHUTDOWN:
                    continue
                spec, digest, retries, submitted = item
                if not digest:
                    digest = job_digest(spec,
                                        llm_seed=self.pool.llm_seed)
                self._settle(digest, spec, error="service closed",
                             retries=retries, submitted=submitted,
                             dispatched=False)
        self._dispatcher.join(timeout=30)
        # A submit racing close() can land behind the sentinel; fail
        # those jobs explicitly so their waiters wake instead of
        # hanging (submit() re-drains on its side of the race too).
        self._fail_stragglers()
        self.drain(timeout=30)
        self.pool.shutdown(wait=True)
        if self.cache.path is not None:
            self.cache.save()
        snapshot = self.metrics.to_dict()
        self.log.info("service.close",
                      submitted=snapshot["submitted"],
                      completed=snapshot["completed"],
                      failed=snapshot["failed"],
                      cache_hits=snapshot["cache_hits"])

    def _fail_stragglers(self) -> None:
        """Fail every job still queued after the dispatcher exited."""
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is _SHUTDOWN:
                continue
            spec, digest, retries, submitted = item
            if not digest:
                digest = job_digest(spec, llm_seed=self.pool.llm_seed)
            self._settle(digest, spec, error="service closed",
                         retries=retries, submitted=submitted,
                         dispatched=False)

    def __enter__(self) -> "OptimizationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- dispatch ----------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                break
            spec, digest, retries, submitted = item
            try:
                self._dispatch_one(spec, digest, retries, submitted)
            except Exception as exc:  # noqa: BLE001 — the dispatcher
                # must survive anything; a dead loop strands every
                # queued job's waiter forever.
                if not digest:
                    try:
                        digest = job_digest(
                            spec, llm_seed=self.pool.llm_seed)
                    except Exception:  # noqa: BLE001
                        digest = ""
                if not digest:
                    self._finish(spec, error=f"dispatch failed: {exc}",
                                 retries=retries, submitted=submitted,
                                 dispatched=False)
                else:
                    # Settle (not just finish) so any waiters enrolled
                    # behind this job are released too.
                    self._settle(digest, spec,
                                 error=f"dispatch failed: {exc}",
                                 retries=retries, submitted=submitted,
                                 dispatched=False)

    def _dispatch_one(self, spec: JobSpec, digest: str, retries: int,
                      submitted: float) -> None:
        if not digest:
            # submit() could not digest this spec; recompute here so
            # the failure settles as a job error, not a dead dispatcher.
            digest = job_digest(spec, llm_seed=self.pool.llm_seed)
        cached = self.cache.get_job(digest)
        if cached is not None and all(key in cached
                                      for key in _CACHED_KEYS):
            self.log.info("job.cache_hit", job_id=spec.job_id,
                          digest=digest)
            self._settle(digest, spec, payload=cached, cached=True,
                         retries=retries, submitted=submitted,
                         dispatched=False)
            return
        if retries == 0:
            # Single-flight: an identical job already running serves
            # this one too (a requeued job is the running one — it
            # must not wait on itself).
            with self._lock:
                waiters = self._pending.get(digest)
                if waiters is not None:
                    waiters.append((spec, submitted))
                    self.log.debug("job.coalesce", job_id=spec.job_id,
                                   digest=digest)
                    return
                self._pending[digest] = []
        self._slots.acquire()         # bound in-flight work at pool width
        try:
            future = self.pool.submit(spec)
        except WorkerCrashError as exc:
            self._slots.release()
            self.pool.restart()
            self._crash_requeue(digest, spec, retries, submitted, exc,
                                dispatched=False)
            return
        self.metrics.record_dispatched()
        self.log.debug("job.dispatch", job_id=spec.job_id,
                       digest=digest, retries=retries)
        future.add_done_callback(functools.partial(
            self._on_done, spec, retries, submitted, digest))

    def _on_done(self, spec: JobSpec, retries: int, submitted: float,
                 digest: str, future) -> None:
        self._slots.release()
        try:
            exc = future.exception()
            if exc is not None and WorkerPool.is_crash(exc):
                self.pool.restart()
                self._crash_requeue(digest, spec, retries, submitted,
                                    exc, dispatched=True)
                return
            if exc is not None:
                self._settle(digest, spec, error=str(exc),
                             retries=retries, submitted=submitted,
                             dispatched=True)
                return
            payload = future.result()
            self._note_worker(payload)
            analysis = payload.get("analysis")
            if isinstance(analysis, dict) and analysis:
                self.log.info(
                    "analysis.reject", job_id=spec.job_id,
                    digest=digest, codes=analysis,
                    rejects=sum(analysis.values()))
            self.cache.put_job(
                digest, {key: payload[key] for key in _CACHED_KEYS})
            self._settle(digest, spec, payload=payload, cached=False,
                         retries=retries, submitted=submitted,
                         dispatched=True)
        except Exception as unexpected:  # noqa: BLE001 — a dead
            # callback would strand this job's (and its waiters')
            # result events.
            self._settle(digest, spec,
                         error=f"completion failed: {unexpected}",
                         retries=retries, submitted=submitted,
                         dispatched=False)

    def _crash_requeue(self, digest: str, spec: JobSpec, retries: int,
                       submitted: float, exc: BaseException,
                       dispatched: bool) -> None:
        if dispatched:
            self.metrics.record_undispatched()
        if retries < self.max_retries and not self._closed:
            try:
                self._queue.put_nowait((spec, digest, retries + 1,
                                        submitted))
            except queue.Full:
                self._settle(digest, spec,
                             error=f"requeue failed, queue full "
                                   f"(after crash: {exc})",
                             retries=retries, submitted=submitted,
                             dispatched=False)
                return
            self.metrics.record_requeued()
            self.log.warning("job.requeue", job_id=spec.job_id,
                             digest=digest, retries=retries + 1,
                             error=str(exc))
            return
        self._settle(digest, spec,
                     error=f"worker crashed {retries + 1}x: {exc}",
                     retries=retries, submitted=submitted,
                     dispatched=False)

    def _settle(self, digest: str, spec: JobSpec,
                payload: Optional[dict] = None, cached: bool = False,
                error: str = "", retries: int = 0,
                submitted: float = 0.0,
                dispatched: bool = True) -> None:
        """Finish a job and every identical job waiting on it."""
        self._finish(spec, payload=payload, cached=cached, error=error,
                     retries=retries, submitted=submitted,
                     dispatched=dispatched, digest=digest)
        with self._lock:
            waiters = self._pending.pop(digest, [])
        for waiter_spec, waiter_submitted in waiters:
            self._finish(waiter_spec, payload=payload,
                         cached=payload is not None, error=error,
                         submitted=waiter_submitted, dispatched=False,
                         digest=digest)

    def _note_worker(self, payload: dict) -> None:
        worker = payload.get("worker", "?")
        built = payload.get("pipeline_constructions", 0)
        with self._lock:
            self._worker_constructions[worker] = max(
                self._worker_constructions.get(worker, 0), built)
        backend = payload.get("backend")
        if isinstance(backend, dict):
            self.metrics.observe_backend(
                payload.get("backend_key", "?"), backend)
        phases = payload.get("phases")
        if isinstance(phases, dict):
            # Fresh completions only — cached replays never reach
            # _note_worker, so phase totals count work actually done.
            self.metrics.observe_phases(phases)
        analysis = payload.get("analysis")
        if isinstance(analysis, dict):
            # Same fresh-only rule: a cached replay's rejections were
            # already counted when the job first ran.
            self.metrics.record_analysis(analysis)

    def _finish(self, spec: JobSpec, payload: Optional[dict] = None,
                cached: bool = False, error: str = "",
                retries: int = 0, submitted: float = 0.0,
                dispatched: bool = True, digest: str = "") -> None:
        latency = time.monotonic() - submitted
        ok = not error
        result = JobResult(
            job_id=spec.job_id,
            ok=ok,
            status=(payload["status"] if payload else "error"),
            found=bool(payload and payload["found"]),
            candidate_text=(payload["candidate_text"] if payload
                            else ""),
            elapsed_seconds=(payload["elapsed_seconds"] if payload
                             else 0.0),
            attempts=(payload["attempts"] if payload else 0),
            latency_seconds=latency,
            cached=cached,
            retries=retries,
            # Absent from cached payloads (_CACHED_KEYS): a cache hit
            # spends nothing.
            cost_usd=(payload.get("cost_usd", 0.0) if payload else 0.0),
            error=error,
            tag=spec.tag)
        self.metrics.record_completed(latency, cached=cached, ok=ok,
                                      dispatched=dispatched)
        self.log.info("job.settle", job_id=spec.job_id, digest=digest,
                      ok=ok, cached=cached, found=result.found,
                      status=result.status,
                      latency_seconds=round(latency, 6),
                      retries=retries, error=error)
        # Slow-job log: fresh completions over the threshold get their
        # span breakdown (waiters settle as cached, so each slow run is
        # reported exactly once).
        spans = payload.get("spans") if payload else None
        if (not cached and spans
                and self.slow_job_seconds is not None
                and latency >= self.slow_job_seconds):
            self.log.warning(
                "job.slow", job_id=spec.job_id, digest=digest,
                latency_seconds=round(latency, 6),
                threshold_seconds=self.slow_job_seconds,
                spans=spans,
                breakdown=profile.render_spans(spans))
        with self._lock:
            self._results[spec.job_id] = result
            event = self._events.get(spec.job_id)
            self._outstanding -= 1
            self._idle.notify_all()
        if event is not None:
            event.set()


class ServiceServer:
    """Asyncio JSON-lines TCP front end over an
    :class:`OptimizationService`."""

    def __init__(self, service: OptimizationService,
                 host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port                 # 0: ephemeral; rebound on start
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._startup_error: Optional[BaseException] = None
        self._job_executor: Optional[ThreadPoolExecutor] = None
        #: When serving on a daemon thread, failures are re-raised by
        #: start_background instead of crashing the thread.
        self._background = False

    # -- lifecycle ---------------------------------------------------------
    def serve_forever(self) -> None:
        """Bind and serve until :meth:`stop` (or a ``shutdown``
        message).  Blocks the calling thread."""
        try:
            asyncio.run(self._amain())
        except BaseException as exc:
            self._startup_error = exc
            if not self._background:
                raise
        finally:
            self._ready.set()     # wake start_background on failure too

    def start_background(self, timeout: float = 10.0) -> int:
        """Serve on a daemon thread; returns the bound port."""
        self._background = True
        self._thread = threading.Thread(target=self.serve_forever,
                                        name="repro-serve", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ReproError("service socket failed to come up")
        if self._startup_error is not None:
            raise ReproError(f"service socket failed to come up: "
                             f"{self._startup_error}")
        return self.port

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for a background server to exit (e.g. on a client's
        ``shutdown`` message)."""
        if self._thread is not None:
            self._thread.join(timeout)

    def stop(self) -> None:
        if (self._loop is not None and self._stop is not None
                and not self._loop.is_closed()):
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass        # loop shut down between the check and call
        if self._thread is not None:
            self._thread.join(timeout=10)

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        # Job waits block a thread each; a dedicated executor keeps a
        # burst of pipelined submits from starving asyncio's small
        # shared default pool (and the status path runs inline, so
        # monitoring stays responsive under full load).
        self._job_executor = ThreadPoolExecutor(
            max_workers=64, thread_name_prefix="repro-serve-job")
        server = await asyncio.start_server(self._handle, self.host,
                                            self.port,
                                            limit=_WIRE_LIMIT)
        self.port = server.sockets[0].getsockname()[1]
        self.service.log.info("server.listen", host=self.host,
                              port=self.port)
        self._ready.set()
        try:
            async with server:
                await self._stop.wait()
        finally:
            self._job_executor.shutdown(wait=False)

    # -- per-connection protocol -------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        loop = asyncio.get_running_loop()
        write_lock = asyncio.Lock()
        jobs = set()

        async def send(message: dict) -> None:
            async with write_lock:
                writer.write(encode_line(message))
                await writer.drain()

        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Line over _WIRE_LIMIT: the stream position is no
                    # longer trustworthy; report and drop the client.
                    await send({"type": "error",
                                "message": f"message exceeds the "
                                           f"{_WIRE_LIMIT} byte line "
                                           f"limit"})
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = decode_line(line)
                except ProtocolError as exc:
                    await send({"type": "error", "message": str(exc)})
                    continue
                mtype = message["type"]
                if mtype == "submit":
                    try:
                        spec = spec_from_wire(message)
                    except ProtocolError as exc:
                        await send({"type": "error",
                                    "message": str(exc)})
                        continue
                    job = asyncio.ensure_future(
                        self._serve_job(spec, send, loop))
                    jobs.add(job)
                    job.add_done_callback(jobs.discard)
                elif mtype == "campaign":
                    try:
                        campaign = campaign_from_wire(message)
                    except ProtocolError as exc:
                        await send({"type": "error",
                                    "message": str(exc)})
                        continue
                    job = asyncio.ensure_future(
                        self._serve_campaign(campaign, send, loop))
                    jobs.add(job)
                    job.add_done_callback(jobs.discard)
                elif mtype == "status":
                    # status() only takes short locks — safe inline,
                    # and immune to job-wait thread exhaustion.
                    await send({"type": "status_reply",
                                "status": self.service.status()})
                elif mtype == "probe":
                    # Cache-federation probe: a plain sharded-cache
                    # lookup (short per-shard lock), safe inline.
                    try:
                        digest = probe_from_wire(message)
                    except ProtocolError as exc:
                        await send({"type": "error",
                                    "message": str(exc)})
                        continue
                    cached = self.service.cache.get_job(digest)
                    hit = (cached is not None
                           and all(key in cached
                                   for key in _CACHED_KEYS))
                    await send({"type": "probe_reply",
                                "digest": digest, "hit": hit})
                elif mtype == "shutdown":
                    await send({"type": "shutting_down"})
                    self._stop.set()
                    break
                else:
                    await send({"type": "error",
                                "message": f"unknown message type "
                                           f"{mtype!r}"})
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if jobs:
                await asyncio.gather(*jobs, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _serve_job(self, spec: JobSpec,
                         send: Callable, loop) -> None:
        # The client's job_id is a per-connection correlation tag; the
        # service assigns its own id and the reply restores the client's.
        client_id = spec.job_id
        try:
            result = await loop.run_in_executor(
                self._job_executor, self.service.run,
                replace(spec, job_id=""))
        except Exception as exc:   # noqa: BLE001 — always answer the
            # client; an unreplied submit would hang its reader.
            await send({"type": "error", "message": str(exc),
                        "job_id": client_id})
            return
        if client_id:
            result = replace(result, job_id=client_id)
        await send(result_to_wire(result))

    async def _serve_campaign(self, spec: CampaignSpec,
                              send: Callable, loop) -> None:
        # As with jobs, the client's campaign_id is a correlation tag;
        # the service assigns its own and the reply restores the
        # client's.
        client_id = spec.campaign_id
        try:
            result = await loop.run_in_executor(
                self._job_executor, self.service.run_campaign,
                replace(spec, campaign_id=""))
        except Exception as exc:   # noqa: BLE001 — always answer the
            # client; an unreplied campaign would hang its reader.
            await send({"type": "error", "message": str(exc),
                        "campaign_id": client_id})
            return
        if client_id:
            result = replace(result, campaign_id=client_id)
        await send(campaign_result_to_wire(result))
