"""The multi-host service mesh: a consistent-hash router over N
``repro serve`` shards.

One ``repro serve`` daemon saturates one box; the mesh makes a fleet
of them behave like one service.  :class:`MeshRouter` speaks the same
JSON-lines protocol to clients that a single shard does — ``repro
submit``/``campaign``/``status`` work unchanged against a router — and
routes every job by consistent-hashing its structural
:func:`~repro.service.protocol.job_digest` across the shard set:

* **Routing.** A :class:`HashRing` with virtual nodes maps each digest
  to its *owner* shard, so identical jobs always land on the same
  shard's warm job cache and the corpus spreads evenly as shards are
  added.  Routing is pure digest arithmetic — the router holds no
  pipeline, no worker pool, and no LPO state.

* **Health + failover.** A background checker pings each shard's
  ``status`` endpoint; an unreachable shard is marked down and excluded
  from the ring walk (the same ``excluded``-set idiom the service's
  crash requeue uses).  A job in flight to a shard that dies is
  re-routed to the next live owner — jobs are pure, digest-keyed
  computations, so a re-run on another shard returns the identical
  result and nothing is lost or duplicated.

* **Cache federation.** The router remembers which shard served each
  digest.  When a resubmission hashes to a *cold* owner (the ring
  changed — e.g. the original owner was down at first submission), the
  router first ``probe``\\ s the remembered warm shard's job cache and
  routes there on a hit, so the fleet answers from any shard's cache
  before any shard re-runs the LPO loop.

* **Single-flight.** Identical jobs in flight through the router share
  one shard round-trip (the same dedup the service applies per
  instance, lifted to the fleet — preserved across failover
  re-routing).

* **Campaign fan-out.** :meth:`MeshRouter.run_campaign` drives the
  same round engine (:func:`~repro.service.campaign.execute_campaign`)
  as ``run_rq1`` and the single service, routing every per-window job
  across the fleet in parallel; aggregate detection matrices are
  bit-identical to a single-shard run.

* **Tenancy.** A shared-secret ``--token`` gates the router's socket
  (typed ``auth`` errors), and per-client in-flight quotas answer
  over-quota submissions with a typed ``quota`` backpressure error —
  the knobs a mesh needs before it can take real multi-tenant traffic.
  Shards themselves stay unauthenticated: they are the private plane
  behind the router.

* **Fleet status.** :func:`federate_status` sums every shard's
  counters and :meth:`Histogram.merge
  <repro.service.metrics.Histogram.merge>`\\ s the fixed-bucket latency
  histograms into one view; ``repro status --mesh`` renders it and the
  unchanged Prometheus exporter serves it from the router's
  ``--metrics-port``.

:class:`MeshServer` is the asyncio socket front end (``repro mesh
serve``) — the mesh twin of
:class:`~repro.service.server.ServiceServer`.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import itertools
import os
import pathlib
import tempfile
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import ReproError
from repro.service.campaign import (
    CampaignLeg,
    RoundOutcome,
    campaign_legs,
    execute_campaign,
)
from repro.service.client import ServiceClient
from repro.service.metrics import Histogram
from repro.service.protocol import (
    AuthenticationError,
    CampaignResult,
    CampaignSpec,
    JobResult,
    JobSpec,
    ProtocolError,
    QuotaExceededError,
    campaign_digest,
    campaign_from_wire,
    campaign_result_to_wire,
    decode_line,
    encode_line,
    error_to_wire,
    job_digest,
    result_to_wire,
    spec_from_wire,
)

__all__ = [
    "HashRing", "MeshRouter", "MeshServer", "ShardEndpoint",
    "federate_status", "parse_shard", "read_shards_file",
    "write_file_atomic", "write_shards_file",
]

#: Virtual nodes per shard on the hash ring: enough that two or three
#: shards split a corpus near-evenly, cheap enough to rebuild at will.
VNODES = 64

#: How many digest → serving-shard entries the federation index keeps
#: (LRU; an evicted entry degrades to a normal ring route, never an
#: error).
FEDERATION_INDEX_ENTRIES = 65536

#: Transport failures that trigger failover to the next live shard.
#: ProtocolError subclasses (auth/quota/wire junk) are deliberately
#: excluded: they are answers, not dead shards.
_FAILOVER_ERRORS = (OSError, ReproError)

#: Max bytes per wire line (mirrors the shard server's limit).
_WIRE_LIMIT = 4 * 1024 * 1024


# -- shard addressing ------------------------------------------------------
@dataclass(frozen=True)
class ShardEndpoint:
    """One ``repro serve`` daemon's address."""

    host: str
    port: int

    @property
    def key(self) -> str:
        return f"{self.host}:{self.port}"


def parse_shard(text: str) -> ShardEndpoint:
    """``host:port`` → :class:`ShardEndpoint` (raises ReproError)."""
    host, sep, port = text.strip().rpartition(":")
    if not sep or not host:
        raise ReproError(f"bad shard address {text!r} "
                         f"(expected host:port)")
    try:
        number = int(port)
    except ValueError:
        raise ReproError(f"bad shard port in {text!r}") from None
    if not 0 < number < 65536:
        raise ReproError(f"bad shard port in {text!r}")
    return ShardEndpoint(host=host, port=number)


def read_shards_file(path) -> List[ShardEndpoint]:
    """One ``host:port`` per line; blank lines and ``#`` comments
    ignored."""
    endpoints = []
    for line in pathlib.Path(path).read_text().splitlines():
        stripped = line.split("#", 1)[0].strip()
        if stripped:
            endpoints.append(parse_shard(stripped))
    return endpoints


def write_file_atomic(path, text: str) -> None:
    """Write via a same-directory temp file + ``os.replace`` so a
    concurrent reader (a port-file watcher, a router loading a shards
    file) never observes a partial write."""
    target = pathlib.Path(path)
    handle, tmp_name = tempfile.mkstemp(
        prefix=f".{target.name}.", dir=str(target.parent or "."))
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as tmp:
            tmp.write(text)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def write_shards_file(path, endpoints: Sequence[ShardEndpoint]) -> None:
    """Persist a shard list (atomically — see
    :func:`write_file_atomic`)."""
    write_file_atomic(path, "".join(f"{endpoint.key}\n"
                                    for endpoint in endpoints))


# -- consistent hashing ----------------------------------------------------
def _ring_point(value: str) -> int:
    return int.from_bytes(
        hashlib.sha256(value.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Consistent hashing with virtual nodes.

    Each shard key is placed at :data:`VNODES` pseudo-random points on
    a 64-bit ring; a digest routes to the first point clockwise from
    its own hash.  ``excluded`` keys are skipped in ring order — the
    failover walk — so removing a shard only moves the jobs it owned,
    never reshuffles the fleet.
    """

    def __init__(self, keys: Sequence[str], vnodes: int = VNODES):
        self.keys = tuple(keys)
        points: List[Tuple[int, str]] = []
        for key in self.keys:
            for index in range(vnodes):
                points.append((_ring_point(f"{key}#{index}"), key))
        points.sort()
        self._points = points
        self._hashes = [point for point, _key in points]

    def owner(self, digest: str, excluded=frozenset()) -> Optional[str]:
        """The live shard owning ``digest`` (``None`` when every shard
        is excluded)."""
        if not self._points:
            return None
        start = bisect.bisect_right(self._hashes, _ring_point(digest))
        total = len(self._points)
        seen = set()
        for step in range(total):
            _point, key = self._points[(start + step) % total]
            if key in seen:
                continue
            seen.add(key)
            if key not in excluded:
                return key
            if len(seen) == len(self.keys):
                return None
        return None


# -- router metrics --------------------------------------------------------
class MeshMetrics:
    """Lock-protected router-plane counters (the shard planes keep
    their own :class:`~repro.service.metrics.ServiceMetrics`)."""

    _COUNTERS = ("routed", "coalesced", "failovers",
                 "federation_probes", "federation_hits",
                 "federation_misses", "no_shard_errors",
                 "auth_rejects", "quota_rejects")

    def __init__(self):
        self._lock = threading.Lock()
        for name in self._COUNTERS:
            setattr(self, name, 0)
        self.per_shard: Dict[str, int] = {}
        self.campaigns_started = 0
        self.campaigns_completed = 0
        self.campaigns_failed = 0
        self.campaign_rounds = 0
        self.campaign_detections = 0

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def record_routed(self, shard_key: str) -> None:
        with self._lock:
            self.routed += 1
            self.per_shard[shard_key] = (
                self.per_shard.get(shard_key, 0) + 1)

    def to_dict(self) -> dict:
        with self._lock:
            snapshot = {name: getattr(self, name)
                        for name in self._COUNTERS}
            snapshot["per_shard"] = dict(sorted(self.per_shard.items()))
            snapshot["campaigns"] = {
                "started": self.campaigns_started,
                "completed": self.campaigns_completed,
                "failed": self.campaigns_failed,
                "rounds_completed": self.campaign_rounds,
                "detections": self.campaign_detections,
            }
        return snapshot


# -- fleet-status federation -----------------------------------------------
#: Shard-status counters/gauges that sum across the fleet.
_SUM_FIELDS = ("submitted", "completed", "failed", "rejected",
               "requeued", "cache_hits", "cache_misses", "in_flight",
               "queue_depth", "workers", "pipeline_constructions",
               "job_cache_entries", "cache_shards", "jobs_per_second")

_CAMPAIGN_FIELDS = ("started", "completed", "failed",
                    "rounds_completed", "detections")

_LLM_FIELDS = ("calls", "retries", "failures", "rate_limit_waits",
               "latency_seconds", "cost_usd")


def federate_status(snapshots: Sequence[dict]) -> dict:
    """One fleet view from N shard ``status()`` snapshots.

    Counters and gauges sum; per-phase seconds, analysis codes, and
    campaign counters sum-merge; the fixed-bucket latency histograms
    merge exactly via :meth:`Histogram.merge
    <repro.service.metrics.Histogram.merge>` (identical bucket bounds
    on every shard make this lossless — the property the reservoir
    percentiles cannot offer, which is why the fleet view has no
    ``latency`` percentile entry).  The result keeps the shape of a
    single service's status dict, so
    :func:`~repro.service.exporter.render_prometheus` renders it
    unchanged.
    """
    fleet: dict = {field: 0 for field in _SUM_FIELDS}
    campaigns = {field: 0 for field in _CAMPAIGN_FIELDS}
    active: List[dict] = []
    llm = {field: 0 for field in _LLM_FIELDS}
    phases: Dict[str, float] = {}
    analysis_codes: Dict[str, int] = {}
    analysis_rejects = 0
    histograms: Dict[str, dict] = {}
    uptime = 0.0
    for snapshot in snapshots:
        for field in _SUM_FIELDS:
            value = snapshot.get(field, 0)
            if isinstance(value, (int, float)):
                fleet[field] += value
        snap_campaigns = snapshot.get("campaigns", {})
        for field in _CAMPAIGN_FIELDS:
            campaigns[field] += snap_campaigns.get(field, 0)
        active.extend(snap_campaigns.get("active", ()))
        snap_llm = snapshot.get("llm_backend", {})
        for field in _LLM_FIELDS:
            value = snap_llm.get(field, 0)
            if isinstance(value, (int, float)):
                llm[field] += value
        for name, seconds in snapshot.get("phases", {}).items():
            if isinstance(seconds, (int, float)):
                phases[name] = phases.get(name, 0.0) + float(seconds)
        snap_analysis = snapshot.get("analysis", {})
        analysis_rejects += snap_analysis.get("rejects", 0)
        for code, count in snap_analysis.get("codes", {}).items():
            if isinstance(count, int):
                analysis_codes[code] = (analysis_codes.get(code, 0)
                                        + count)
        for origin, histogram in snapshot.get(
                "latency_histograms", {}).items():
            if origin in histograms:
                histograms[origin] = Histogram.merge(
                    histograms[origin], histogram)
            else:
                histograms[origin] = histogram
        uptime = max(uptime, snapshot.get("uptime_seconds", 0.0))
    fleet["jobs_per_second"] = round(fleet["jobs_per_second"], 3)
    total_lookups = fleet["cache_hits"] + fleet["cache_misses"]
    fleet["cache_hit_rate"] = round(
        fleet["cache_hits"] / total_lookups if total_lookups else 0.0,
        4)
    fleet["uptime_seconds"] = round(uptime, 3)
    fleet["campaigns"] = {**campaigns, "active": active}
    llm["latency_seconds"] = round(llm["latency_seconds"], 6)
    llm["cost_usd"] = round(llm["cost_usd"], 6)
    fleet["llm_backend"] = llm
    fleet["phases"] = {name: round(seconds, 6) for name, seconds
                       in sorted(phases.items(),
                                 key=lambda kv: (-kv[1], kv[0]))}
    fleet["analysis"] = {"rejects": analysis_rejects,
                         "codes": dict(sorted(analysis_codes.items()))}
    fleet["latency_histograms"] = histograms
    fleet["shards"] = len(snapshots)
    return fleet


# -- per-shard connection state --------------------------------------------
class _Shard:
    """One shard's health flag, connection pool, and last snapshot."""

    def __init__(self, endpoint: ShardEndpoint,
                 connect_timeout: float, timeout: float,
                 connect_retries: int = 1,
                 connect_backoff: float = 0.1):
        self.endpoint = endpoint
        self.key = endpoint.key
        self.healthy = True          # optimistic: failover self-corrects
        self.last_error = ""
        self.last_status: Optional[dict] = None
        self.connect_timeout = connect_timeout
        self.timeout = timeout
        self.connect_retries = max(0, int(connect_retries))
        self.connect_backoff = connect_backoff
        self._idle: List[ServiceClient] = []
        self._lock = threading.Lock()

    def connect(self, retries: Optional[int] = None) -> ServiceClient:
        return ServiceClient(self.endpoint.port,
                             host=self.endpoint.host,
                             timeout=self.timeout,
                             connect_timeout=self.connect_timeout,
                             connect_retries=(self.connect_retries
                                              if retries is None
                                              else retries),
                             connect_backoff=self.connect_backoff)

    def borrow(self) -> ServiceClient:
        with self._lock:
            if self._idle:
                return self._idle.pop()
        # Mid-restart shards get the polite retry (the router's
        # ``connect_retries``); a hard-down shard still fails within a
        # few backoff steps and trips failover.
        return self.connect()

    def release(self, client: ServiceClient, broken: bool) -> None:
        if broken:
            try:
                client.close()
            except OSError:
                pass
            return
        with self._lock:
            self._idle.append(client)

    def close_idle(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
        for client in idle:
            try:
                client.close()
            except OSError:
                pass


class _Flight:
    """Router-level single-flight slot for one digest."""

    def __init__(self):
        self.done = threading.Event()
        self.result: Optional[JobResult] = None


# -- the router ------------------------------------------------------------
class MeshRouter:
    """Routes jobs/campaigns across a fleet of ``repro serve`` shards.

    In-process twin of the socket front end: tests and embedders call
    :meth:`route_job` / :meth:`run_campaign` / :meth:`status` directly;
    :class:`MeshServer` exposes the same over the JSON-lines protocol.
    """

    def __init__(self, shards: Sequence[ShardEndpoint],
                 token: Optional[str] = None,
                 quota: Optional[int] = None,
                 llm_seed: int = 0,
                 health_interval: Optional[float] = 2.0,
                 connect_timeout: float = 5.0,
                 timeout: float = 600.0,
                 connect_retries: int = 1,
                 connect_backoff: float = 0.1,
                 route_threads: Optional[int] = None,
                 logger: Optional[obs.StructuredLogger] = None,
                 request_timeout: Optional[float] = None):
        if request_timeout is not None:
            # Historical name for the per-request bound; ``timeout``
            # matches ServiceClient and the backend-spec grammar now.
            import warnings
            warnings.warn(
                "MeshRouter(request_timeout=...) is deprecated; pass "
                "timeout= (connection-level knobs keep the connect_* "
                "prefix)", DeprecationWarning, stacklevel=2)
            timeout = request_timeout
        if not shards:
            raise ReproError("a mesh needs at least one shard")
        seen = set()
        for endpoint in shards:
            if endpoint.key in seen:
                raise ReproError(f"duplicate shard {endpoint.key}")
            seen.add(endpoint.key)
        self.log = logger if logger is not None else obs.default()
        self.token = token
        #: Max in-flight requests (jobs or campaigns) per client
        #: identity; ``None`` = unlimited.
        self.quota = quota if quota is None else max(1, int(quota))
        self.llm_seed = llm_seed
        self._shards: "OrderedDict[str, _Shard]" = OrderedDict(
            (endpoint.key, _Shard(endpoint, connect_timeout, timeout,
                                  connect_retries=connect_retries,
                                  connect_backoff=connect_backoff))
            for endpoint in shards)
        self.ring = HashRing(list(self._shards))
        self.metrics = MeshMetrics()
        self._lock = threading.Lock()
        #: digest → shard key that served it (LRU-bounded federation
        #: index: lets a resubmission hit a warm shard even when the
        #: ring now points at a cold one).
        self._served: "OrderedDict[str, str]" = OrderedDict()
        self._inflight: Dict[str, _Flight] = {}
        self._client_inflight: Dict[str, int] = {}
        self._campaigns: Dict[str, dict] = {}
        self._job_ids = itertools.count(1)
        self._campaign_ids = itertools.count(1)
        self._started = time.monotonic()
        self._closed = False
        width = (route_threads if route_threads is not None
                 else min(32, 8 * len(self._shards)))
        self._route_pool = ThreadPoolExecutor(
            max_workers=max(2, width),
            thread_name_prefix="repro-mesh-route")
        self.log.info("mesh.start", shards=list(self._shards),
                      quota=self.quota, llm_seed=llm_seed,
                      token=bool(token),
                      health_interval=health_interval)
        self._health_stop = threading.Event()
        self._health_thread: Optional[threading.Thread] = None
        if health_interval is not None and health_interval > 0:
            self._health_thread = threading.Thread(
                target=self._health_loop, args=(health_interval,),
                name="repro-mesh-health", daemon=True)
            self._health_thread.start()

    # -- shard health ------------------------------------------------------
    def _health_loop(self, interval: float) -> None:
        while not self._health_stop.wait(interval):
            try:
                self.check_health()
            except Exception:  # noqa: BLE001 — the checker must outlive
                pass           # any single bad probe

    def check_health(self) -> Dict[str, bool]:
        """Ping every shard's status endpoint once; returns the health
        map.  Called periodically by the background thread and directly
        by tests (deterministic, no timing races)."""
        health = {}
        for shard in self._shards.values():
            try:
                client = shard.connect(retries=0)
                try:
                    shard.last_status = client.status()
                finally:
                    client.close()
            except _FAILOVER_ERRORS as exc:
                self._mark_down(shard, exc)
            else:
                self._mark_up(shard)
            health[shard.key] = shard.healthy
        return health

    def _mark_down(self, shard: _Shard, exc: BaseException) -> None:
        shard.last_error = str(exc)
        if shard.healthy:
            shard.healthy = False
            shard.close_idle()
            self.log.warning("mesh.shard_down", shard=shard.key,
                             error=str(exc))

    def _mark_up(self, shard: _Shard) -> None:
        shard.last_error = ""
        if not shard.healthy:
            shard.healthy = True
            self.log.info("mesh.shard_up", shard=shard.key)

    def _down_shards(self) -> set:
        return {key for key, shard in self._shards.items()
                if not shard.healthy}

    # -- tenancy -----------------------------------------------------------
    def check_token(self, token: Optional[str], client_id: str) -> None:
        """Raise :class:`AuthenticationError` unless ``token`` matches
        the router's shared secret (no-op when authn is disabled)."""
        if self.token is None:
            return
        if token != self.token:
            self.metrics.bump("auth_rejects")
            self.log.warning("mesh.auth_reject", client=client_id,
                             provided=bool(token))
            raise AuthenticationError(
                "bad or missing token" if token
                else "missing token (this mesh requires --token)")

    def acquire_slot(self, client_id: str) -> None:
        """Count one in-flight request against ``client_id``'s quota;
        raises :class:`QuotaExceededError` over the limit."""
        with self._lock:
            inflight = self._client_inflight.get(client_id, 0)
            if self.quota is not None and inflight >= self.quota:
                self.metrics.quota_rejects += 1
                self.log.warning("mesh.quota_reject", client=client_id,
                                 in_flight=inflight, quota=self.quota)
                raise QuotaExceededError(
                    f"client {client_id!r} has {inflight} requests in "
                    f"flight (quota {self.quota}); retry after "
                    f"results drain")
            self._client_inflight[client_id] = inflight + 1

    def release_slot(self, client_id: str) -> None:
        with self._lock:
            remaining = self._client_inflight.get(client_id, 0) - 1
            if remaining > 0:
                self._client_inflight[client_id] = remaining
            else:
                self._client_inflight.pop(client_id, None)

    # -- routing -----------------------------------------------------------
    def route_job(self, spec: JobSpec, client_id: str = "") -> JobResult:
        """Route one job to its owning shard (with federation,
        failover, and fleet-level single-flight); blocks for the
        result.  Never raises for shard-side failures — they come back
        as error results, exactly like a single service's."""
        if self._closed:
            raise ReproError("mesh router is closed")
        job_id = spec.job_id or f"mesh-{next(self._job_ids):06d}"
        spec = replace(spec, job_id=job_id)
        try:
            digest = job_digest(spec, llm_seed=self.llm_seed)
        except Exception as exc:  # noqa: BLE001 — a spec the digest
            # chokes on routes nowhere; answer, don't die.
            return JobResult(job_id=job_id, ok=False, status="error",
                             error=f"undigestable job: {exc}",
                             tag=spec.tag)
        with self._lock:
            flight = self._inflight.get(digest)
            if flight is None:
                flight = _Flight()
                self._inflight[digest] = flight
                leader = True
            else:
                leader = False
        if not leader:
            # Identical job already crossing the mesh: share its
            # result (cached from this submitter's point of view).
            self.metrics.bump("coalesced")
            self.log.debug("mesh.coalesce", job_id=job_id,
                           digest=digest)
            flight.done.wait()
            shared = flight.result
            if shared is None:       # leader died unsettled
                return JobResult(job_id=job_id, ok=False,
                                 status="error",
                                 error="coalesced job was abandoned",
                                 tag=spec.tag)
            return replace(shared, job_id=job_id, tag=spec.tag,
                           cached=shared.ok or shared.cached)
        try:
            result = self._route_digest(spec, digest)
        except BaseException:
            # Leader must always settle followers, even on surprises.
            with self._lock:
                self._inflight.pop(digest, None)
            flight.done.set()
            raise
        flight.result = result
        with self._lock:
            self._inflight.pop(digest, None)
        flight.done.set()
        return result

    def _route_digest(self, spec: JobSpec, digest: str) -> JobResult:
        excluded = self._down_shards()
        attempted: set = set()
        target = self._federation_target(digest, excluded)
        while True:
            shard_key = (target if target is not None
                         else self.ring.owner(digest,
                                              excluded | attempted))
            target = None
            if shard_key is None:
                self.metrics.bump("no_shard_errors")
                self.log.error("mesh.no_shards", job_id=spec.job_id,
                               digest=digest,
                               attempted=sorted(attempted))
                return JobResult(
                    job_id=spec.job_id, ok=False, status="error",
                    error=f"no live shard for job "
                          f"({len(attempted)} tried, "
                          f"{len(self._shards)} configured)",
                    tag=spec.tag)
            shard = self._shards[shard_key]
            try:
                result = self._submit_to(shard, spec)
            except _FAILOVER_ERRORS as exc:
                # The shard died under this job (or between health
                # ticks): exclude it and walk the ring — the job is
                # pure and digest-keyed, so a re-run elsewhere yields
                # the identical result.
                self._mark_down(shard, exc)
                attempted.add(shard_key)
                self.metrics.bump("failovers")
                self.log.warning("mesh.failover", job_id=spec.job_id,
                                 digest=digest, shard=shard_key,
                                 error=str(exc))
                continue
            self.metrics.record_routed(shard_key)
            self.log.debug("mesh.route", job_id=spec.job_id,
                           digest=digest, shard=shard_key,
                           cached=result.cached)
            if result.ok:
                with self._lock:
                    self._served[digest] = shard_key
                    self._served.move_to_end(digest)
                    while len(self._served) > FEDERATION_INDEX_ENTRIES:
                        self._served.popitem(last=False)
            return result

    def _federation_target(self, digest: str,
                           excluded: set) -> Optional[str]:
        """The warm non-owner shard to answer from, if any.

        When the federation index remembers a serving shard that is
        *not* the current ring owner, probe its job cache; on a hit the
        job routes there (answered from cache, no LPO re-run on the
        cold owner), on a miss (evicted) the index entry is dropped and
        the ring decides.
        """
        with self._lock:
            remembered = self._served.get(digest)
        if remembered is None or remembered in excluded:
            return None
        if remembered == self.ring.owner(digest, excluded):
            return None              # owner is already the warm shard
        shard = self._shards.get(remembered)
        if shard is None:
            return None
        self.metrics.bump("federation_probes")
        try:
            hit = self._probe(shard, digest)
        except _FAILOVER_ERRORS as exc:
            self._mark_down(shard, exc)
            return None
        if hit:
            self.metrics.bump("federation_hits")
            self.log.info("mesh.federation_hit", digest=digest,
                          shard=remembered)
            return remembered
        self.metrics.bump("federation_misses")
        with self._lock:
            self._served.pop(digest, None)
        return None

    def _submit_to(self, shard: _Shard, spec: JobSpec) -> JobResult:
        client = shard.borrow()
        broken = True
        try:
            # The shard connection assigns its own per-connection id;
            # the mesh-side id is restored on the way out.  Wire
            # ``error`` replies (a shard-side exception: the server
            # dying mid-request, a full queue) raise and fail over —
            # only a real job answer (a ``result``, even one with
            # status="error") settles the job here.
            result = client.submit(replace(spec, job_id=""),
                                   raise_wire_errors=True)
            broken = False
        finally:
            shard.release(client, broken=broken)
        return replace(result, job_id=spec.job_id)

    def _probe(self, shard: _Shard, digest: str) -> bool:
        client = shard.borrow()
        broken = True
        try:
            hit = client.probe(digest)
            broken = False
        finally:
            shard.release(client, broken=broken)
        return hit

    def route_many(self, specs: Sequence[JobSpec],
                   client_id: str = "") -> List[JobResult]:
        """Route a batch concurrently across the fleet; results in
        submission order."""
        futures = [self._route_pool.submit(self.route_job, spec,
                                           client_id)
                   for spec in specs]
        return [future.result() for future in futures]

    # -- campaigns ---------------------------------------------------------
    def run_campaign(self, spec: CampaignSpec,
                     client_id: str = "") -> CampaignResult:
        """Fan one multi-round campaign out across the fleet.

        Drives the same round engine as ``run_rq1`` and the
        single-shard service — rounds in order, each round's per-window
        jobs routed concurrently — so the aggregated detection matrix
        is bit-identical to a single-shard run of the same spec.
        """
        spec.validate()
        from repro.llm.backends import parse_backend_spec
        for model in spec.models:
            parse_backend_spec(model)
        campaign_id = (spec.campaign_id
                       or f"mesh-campaign-{next(self._campaign_ids):04d}")
        digest = campaign_digest(spec, llm_seed=self.llm_seed)
        legs = campaign_legs(spec)
        progress = {
            "campaign_id": campaign_id,
            "digest": digest[:12],
            "legs": len(legs),
            "rounds_total": len(legs) * spec.rounds,
            "rounds_done": 0,
            "detections": 0,
        }
        with self._lock:
            self._campaigns[campaign_id] = progress
        self.metrics.bump("campaigns_started")
        self.log.info("mesh.campaign.start", campaign_id=campaign_id,
                      digest=digest[:12], legs=len(legs),
                      windows=len(spec.windows), shards=len(self._shards))

        def run_round(leg: CampaignLeg, round_index: int,
                      round_seed: int):
            job_specs = [JobSpec(ir=ir, model=leg.model,
                                 round_seed=round_seed,
                                 attempt_limit=leg.attempt_limit)
                         for ir in spec.windows]
            results = self.route_many(job_specs, client_id=client_id)
            return [RoundOutcome(found=r.found, ok=r.ok,
                                 cached=r.cached,
                                 latency_seconds=r.latency_seconds,
                                 error=r.error)
                    for r in results]

        def on_round(leg: CampaignLeg, round_index: int,
                     detections: int) -> None:
            with self._lock:
                progress["rounds_done"] += 1
                progress["detections"] += detections
            self.metrics.bump("campaign_rounds")
            self.metrics.bump("campaign_detections", detections)
            self.log.debug("mesh.campaign.round",
                           campaign_id=campaign_id, leg=leg.key,
                           round=round_index, detections=detections)

        ok = False
        result = None
        try:
            result = execute_campaign(
                replace(spec, campaign_id=campaign_id),
                run_round, on_round=on_round)
            ok = result.ok
        finally:
            with self._lock:
                self._campaigns.pop(campaign_id, None)
            self.metrics.bump("campaigns_completed" if ok
                              else "campaigns_failed")
            self.log.info(
                "mesh.campaign.finish", campaign_id=campaign_id,
                ok=ok, detections=progress["detections"],
                rounds_done=progress["rounds_done"])
        return result

    # -- fleet status ------------------------------------------------------
    def shard_statuses(self, refresh: bool = True) -> List[dict]:
        """Per-shard descriptors (health, address, last snapshot).

        ``refresh=True`` fetches live snapshots from reachable shards
        first, so fleet sums reflect this instant; a down shard
        contributes its last known snapshot (marked stale).
        """
        if refresh:
            self.check_health()
        descriptors = []
        for shard in self._shards.values():
            descriptors.append({
                "shard": shard.key,
                "healthy": shard.healthy,
                "error": shard.last_error,
                "routed": self.metrics.to_dict()["per_shard"].get(
                    shard.key, 0),
                "status": shard.last_status,
            })
        return descriptors

    def status(self, refresh: bool = True) -> dict:
        """The fleet view: federated shard counters + the ``mesh``
        section (per-shard health, router counters).  Shape-compatible
        with a single service's ``status()`` so the Prometheus
        exporter and ``repro status`` render it unchanged."""
        descriptors = self.shard_statuses(refresh=refresh)
        snapshots = [d["status"] for d in descriptors
                     if d["status"] is not None]
        fleet = federate_status(snapshots)
        router = self.metrics.to_dict()
        router_campaigns = router.pop("campaigns")
        # Router-run campaigns live here, not on any shard (shards see
        # only the expanded per-window jobs).
        for field in _CAMPAIGN_FIELDS:
            fleet["campaigns"][field] += router_campaigns[field]
        with self._lock:
            fleet["campaigns"]["active"].extend(
                dict(progress) for progress in self._campaigns.values())
        fleet["mesh"] = {
            "shards": [{key: value for key, value in d.items()
                        if key != "status"} for d in descriptors],
            "healthy_shards": sum(d["healthy"] for d in descriptors),
            "router": router,
            "quota": self.quota,
            "authenticated": self.token is not None,
            "uptime_seconds": round(
                time.monotonic() - self._started, 3),
        }
        fleet["backend"] = "mesh"
        return fleet

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._health_stop.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=10)
        self._route_pool.shutdown(wait=True)
        for shard in self._shards.values():
            shard.close_idle()
        self.log.info("mesh.close",
                      routed=self.metrics.to_dict()["routed"])

    def __enter__(self) -> "MeshRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- the socket front end --------------------------------------------------
class MeshServer:
    """Asyncio JSON-lines TCP front end over a :class:`MeshRouter`.

    Speaks the same protocol as
    :class:`~repro.service.server.ServiceServer`, plus the tenancy
    handshake: when the router has a token, the first message on every
    connection must be ``auth`` (typed ``code="auth"`` errors
    otherwise), and every submit/campaign passes the per-client quota
    gate (typed ``code="quota"`` backpressure).
    """

    def __init__(self, router: MeshRouter, host: str = "127.0.0.1",
                 port: int = 0):
        self.router = router
        self.host = host
        self.port = port                 # 0: ephemeral; rebound on start
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._startup_error: Optional[BaseException] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._background = False

    # -- lifecycle ---------------------------------------------------------
    def serve_forever(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:
            self._startup_error = exc
            if not self._background:
                raise
        finally:
            self._ready.set()

    def start_background(self, timeout: float = 10.0) -> int:
        self._background = True
        self._thread = threading.Thread(target=self.serve_forever,
                                        name="repro-mesh-serve",
                                        daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ReproError("mesh socket failed to come up")
        if self._startup_error is not None:
            raise ReproError(f"mesh socket failed to come up: "
                             f"{self._startup_error}")
        return self.port

    def join(self, timeout: Optional[float] = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)

    def stop(self) -> None:
        if (self._loop is not None and self._stop is not None
                and not self._loop.is_closed()):
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=10)

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        # Routed jobs block a thread each on a shard round-trip; size
        # the wait pool like the shard server's.
        self._executor = ThreadPoolExecutor(
            max_workers=64, thread_name_prefix="repro-mesh-wait")
        server = await asyncio.start_server(self._handle, self.host,
                                            self.port,
                                            limit=_WIRE_LIMIT)
        self.port = server.sockets[0].getsockname()[1]
        self.router.log.info("mesh.listen", host=self.host,
                             port=self.port)
        self._ready.set()
        try:
            async with server:
                await self._stop.wait()
        finally:
            self._executor.shutdown(wait=False)

    # -- per-connection protocol -------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        loop = asyncio.get_running_loop()
        write_lock = asyncio.Lock()
        tasks = set()
        peer = writer.get_extra_info("peername")
        client_id = f"{peer[0]}" if peer else "unknown"
        authed = self.router.token is None

        async def send(message: dict) -> None:
            async with write_lock:
                writer.write(encode_line(message))
                await writer.drain()

        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    await send(error_to_wire(
                        f"message exceeds the {_WIRE_LIMIT} byte "
                        f"line limit"))
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = decode_line(line)
                except ProtocolError as exc:
                    await send(error_to_wire(str(exc)))
                    continue
                mtype = message["type"]
                if mtype == "auth":
                    token = message.get("token")
                    name = message.get("client") or client_id
                    try:
                        self.router.check_token(
                            token if isinstance(token, str) else None,
                            name)
                    except AuthenticationError as exc:
                        await send(error_to_wire(
                            str(exc), code=AuthenticationError.code))
                        break        # an unauthenticated peer is done
                    authed = True
                    client_id = name
                    await send({"type": "auth_ok"})
                    continue
                if not authed:
                    self.router.metrics.bump("auth_rejects")
                    self.router.log.warning("mesh.auth_reject",
                                            client=client_id,
                                            provided=False)
                    await send(error_to_wire(
                        "authenticate first (this mesh requires "
                        "--token)", code=AuthenticationError.code))
                    break
                if mtype == "submit":
                    try:
                        spec = spec_from_wire(message)
                    except ProtocolError as exc:
                        await send(error_to_wire(str(exc)))
                        continue
                    task = asyncio.ensure_future(
                        self._serve_job(spec, client_id, send, loop))
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
                elif mtype == "campaign":
                    try:
                        campaign = campaign_from_wire(message)
                    except ProtocolError as exc:
                        await send(error_to_wire(str(exc)))
                        continue
                    task = asyncio.ensure_future(
                        self._serve_campaign(campaign, client_id,
                                             send, loop))
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
                elif mtype == "status":
                    # Unlike a shard's, mesh status fans out over the
                    # network — keep the event loop free.
                    status = await loop.run_in_executor(
                        self._executor, self.router.status)
                    await send({"type": "status_reply",
                                "status": status})
                elif mtype == "shutdown":
                    await send({"type": "shutting_down"})
                    self._stop.set()
                    break
                else:
                    await send(error_to_wire(
                        f"unknown message type {mtype!r}"))
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass    # loop teardown cancels lingering closes

    async def _serve_job(self, spec: JobSpec, client_id: str,
                         send: Callable, loop) -> None:
        client_job_id = spec.job_id
        try:
            self.router.acquire_slot(client_id)
        except QuotaExceededError as exc:
            await send(error_to_wire(str(exc),
                                     code=QuotaExceededError.code,
                                     job_id=client_job_id))
            return
        try:
            result = await loop.run_in_executor(
                self._executor, self.router.route_job,
                replace(spec, job_id=""), client_id)
        except Exception as exc:   # noqa: BLE001 — always answer
            await send(error_to_wire(str(exc), job_id=client_job_id))
            return
        finally:
            self.router.release_slot(client_id)
        if client_job_id:
            result = replace(result, job_id=client_job_id)
        await send(result_to_wire(result))

    async def _serve_campaign(self, spec: CampaignSpec, client_id: str,
                              send: Callable, loop) -> None:
        client_campaign_id = spec.campaign_id
        try:
            self.router.acquire_slot(client_id)
        except QuotaExceededError as exc:
            await send(error_to_wire(str(exc),
                                     code=QuotaExceededError.code,
                                     campaign_id=client_campaign_id))
            return
        try:
            result = await loop.run_in_executor(
                self._executor, self.router.run_campaign,
                replace(spec, campaign_id=""), client_id)
        except Exception as exc:   # noqa: BLE001 — always answer
            await send(error_to_wire(str(exc),
                                     campaign_id=client_campaign_id))
            return
        finally:
            self.router.release_slot(client_id)
        if client_campaign_id:
            result = replace(result, campaign_id=client_campaign_id)
        await send(campaign_result_to_wire(result))
