"""Prometheus-text ``/metrics`` endpoint for the service.

Two layers, split so the wire format is testable without sockets:

* :func:`render_prometheus` — a pure function from one
  :meth:`OptimizationService.status()
  <repro.service.server.OptimizationService.status>` snapshot to
  Prometheus text exposition format (version 0.0.4): every counter
  becomes a ``*_total`` series, gauges stay bare, per-phase seconds get
  a ``phase`` label, and the exact fixed-bucket latency histograms
  (:data:`~repro.service.metrics.LATENCY_BUCKETS`) become conventional
  ``_bucket{le=...}``/``_sum``/``_count`` series split by ``origin``
  (``worker`` vs ``cache``).  The reservoir percentiles are exported as
  separate ``*_recent_seconds{quantile=...}`` gauges — a base name
  distinct from the histogram's, since one family cannot be both.

* :class:`MetricsExporter` — a stdlib :class:`ThreadingHTTPServer` on a
  daemon thread next to the socket server (``repro serve
  --metrics-port``), answering ``GET /metrics`` (exposition),
  ``/healthz`` (liveness) and ``/status`` (the raw JSON snapshot).
  Scrapes call ``service.status()``, which only takes short locks, so
  concurrent scrapes during a live campaign are safe and each one is a
  point-in-time-consistent snapshot.

Histogram bucket counts are exact and cumulative, so a future mesh
front end can sum the per-shard series with plain ``sum by (le)`` —
the property the reservoir percentiles cannot offer.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional

__all__ = ["MetricsExporter", "render_prometheus"]

#: Content type of the Prometheus text exposition format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_PERCENTILE_QUANTILES = {"p50": "0.5", "p90": "0.9", "p99": "0.99"}


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _number(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class _Lines:
    """Accumulates one exposition document, one family at a time."""

    def __init__(self):
        self._out: List[str] = []

    def family(self, name: str, kind: str, help_text: str) -> None:
        self._out.append(f"# HELP {name} {help_text}")
        self._out.append(f"# TYPE {name} {kind}")

    def sample(self, name: str, value, labels: Optional[dict] = None
               ) -> None:
        if labels:
            rendered = ",".join(
                f'{key}="{_escape_label(val)}"'
                for key, val in labels.items())
            self._out.append(f"{name}{{{rendered}}} {_number(value)}")
        else:
            self._out.append(f"{name} {_number(value)}")

    def text(self) -> str:
        return "\n".join(self._out) + "\n"


def render_prometheus(status: dict) -> str:
    """Render one ``status()`` snapshot as Prometheus text exposition."""
    out = _Lines()

    job_counters = (
        ("submitted", "Jobs accepted into the queue."),
        ("completed", "Jobs finished successfully (incl. cache-served)."),
        ("failed", "Jobs finished with an error."),
        ("rejected", "Submits refused by queue backpressure."),
        ("requeued", "Crash-requeued job attempts."),
        ("cache_hits", "Whole-job cache hits."),
        ("cache_misses", "Whole-job cache misses."),
    )
    for field, help_text in job_counters:
        name = f"repro_jobs_{field}_total"
        out.family(name, "counter", help_text)
        out.sample(name, status.get(field, 0))

    gauges = (
        ("repro_jobs_in_flight", "in_flight",
         "Jobs dispatched to a worker and not yet settled."),
        ("repro_queue_depth", "queue_depth",
         "Jobs waiting in the dispatch queue."),
        ("repro_cache_hit_rate", "cache_hit_rate",
         "Whole-job cache hit rate over the service lifetime."),
        ("repro_uptime_seconds", "uptime_seconds",
         "Seconds since the service started."),
        ("repro_jobs_per_second", "jobs_per_second",
         "Completed jobs per second of uptime."),
        ("repro_workers", "workers", "Worker-pool width."),
        ("repro_pipeline_constructions", "pipeline_constructions",
         "Warm pipelines built across the pool's lifetime."),
        ("repro_job_cache_entries", "job_cache_entries",
         "Whole-job entries currently in the result cache."),
    )
    for name, field, help_text in gauges:
        if field not in status:
            continue
        out.family(name, "gauge", help_text)
        out.sample(name, status[field])

    campaigns = status.get("campaigns", {})
    campaign_counters = (
        ("started", "repro_campaigns_started_total",
         "Campaigns accepted."),
        ("completed", "repro_campaigns_completed_total",
         "Campaigns finished with every job ok."),
        ("failed", "repro_campaigns_failed_total",
         "Campaigns finished with at least one failed job."),
        ("rounds_completed", "repro_campaign_rounds_total",
         "Leg-rounds completed across all campaigns."),
        ("detections", "repro_campaign_detections_total",
         "Window detections across all campaign rounds."),
    )
    for field, name, help_text in campaign_counters:
        out.family(name, "counter", help_text)
        out.sample(name, campaigns.get(field, 0))
    out.family("repro_campaigns_active", "gauge",
               "Campaigns currently running.")
    out.sample("repro_campaigns_active",
               len(campaigns.get("active", ())))

    llm = status.get("llm_backend", {})
    llm_counters = (
        ("calls", "repro_llm_calls_total", "LLM backend calls."),
        ("retries", "repro_llm_retries_total", "LLM call retries."),
        ("failures", "repro_llm_failures_total", "LLM call failures."),
        ("rate_limit_waits", "repro_llm_rate_limit_waits_total",
         "Rate-limit waits across LLM backends."),
        ("latency_seconds", "repro_llm_call_latency_seconds_total",
         "Summed LLM call latency in seconds."),
        ("cost_usd", "repro_llm_cost_usd_total",
         "Summed LLM spend in USD."),
    )
    for field, name, help_text in llm_counters:
        out.family(name, "counter", help_text)
        out.sample(name, llm.get(field, 0))

    analysis = status.get("analysis", {})
    out.family("repro_analysis_rejects_total", "counter",
               "Candidate attempts rejected by the static-analysis "
               "gate before the verify tier.")
    out.sample("repro_analysis_rejects_total",
               analysis.get("rejects", 0))
    codes = analysis.get("codes", {})
    out.family("repro_analysis_code_rejects_total", "counter",
               "Static-analysis rejections by diagnostic code.")
    for code, count in sorted(codes.items()):
        out.sample("repro_analysis_code_rejects_total", count,
                   {"code": code})

    phases = status.get("phases", {})
    out.family("repro_phase_seconds_total", "counter",
               "Wall seconds per pipeline phase across fresh jobs.")
    for phase, seconds in sorted(phases.items()):
        out.sample("repro_phase_seconds_total", seconds,
                   {"phase": phase})

    mesh = status.get("mesh")
    if mesh is not None:
        _render_mesh(out, mesh)

    latency = status.get("latency", {})
    out.family("repro_job_latency_recent_seconds", "gauge",
               "Recent job-latency percentiles from a bounded "
               "reservoir (not mergeable across shards).")
    for field, quantile in _PERCENTILE_QUANTILES.items():
        if field in latency:
            out.sample("repro_job_latency_recent_seconds",
                       latency[field], {"quantile": quantile})

    histograms = status.get("latency_histograms", {})
    if histograms:
        out.family("repro_job_latency_seconds", "histogram",
                   "Exact job latency by origin (worker vs cache); "
                   "bucket counts sum across mesh shards.")
        for origin in sorted(histograms):
            snapshot = histograms[origin]
            buckets = snapshot.get("buckets", {})
            # Numeric bounds ascending, "+Inf" last (the counts are
            # already cumulative, so order is presentation only).
            labels = sorted(
                (label for label in buckets if label != "+Inf"),
                key=float) + [label for label in ("+Inf",)
                              if label in buckets]
            for label in labels:
                out.sample("repro_job_latency_seconds_bucket",
                           buckets[label],
                           {"origin": origin, "le": label})
            out.sample("repro_job_latency_seconds_sum",
                       snapshot.get("sum", 0.0), {"origin": origin})
            out.sample("repro_job_latency_seconds_count",
                       snapshot.get("count", 0), {"origin": origin})

    return out.text()


def _render_mesh(out: _Lines, mesh: dict) -> None:
    """Router-plane series for a mesh status snapshot (present only
    when the snapshot came from a :class:`~repro.service.mesh
    .MeshRouter` — shard snapshots never carry a ``mesh`` key)."""
    shards = mesh.get("shards", ())
    out.family("repro_mesh_shards", "gauge", "Configured shards.")
    out.sample("repro_mesh_shards", len(shards))
    out.family("repro_mesh_shards_healthy", "gauge",
               "Shards that answered the last health check.")
    out.sample("repro_mesh_shards_healthy",
               mesh.get("healthy_shards", 0))
    out.family("repro_mesh_shard_up", "gauge",
               "Per-shard liveness (1 up, 0 down).")
    for shard in shards:
        out.sample("repro_mesh_shard_up", shard.get("healthy", False),
                   {"shard": shard.get("shard", "")})

    router = mesh.get("router", {})
    router_counters = (
        ("routed", "repro_mesh_routed_total",
         "Jobs routed to a shard by the mesh router."),
        ("coalesced", "repro_mesh_coalesced_total",
         "Jobs answered by router-level single-flight dedup."),
        ("failovers", "repro_mesh_failovers_total",
         "Jobs re-routed after their shard failed mid-flight."),
        ("federation_probes", "repro_mesh_federation_probes_total",
         "Cache-federation probes sent to warm non-owner shards."),
        ("federation_hits", "repro_mesh_federation_hits_total",
         "Jobs answered from a warm non-owner shard's cache."),
        ("federation_misses", "repro_mesh_federation_misses_total",
         "Federation probes that found the entry evicted."),
        ("no_shard_errors", "repro_mesh_no_shard_errors_total",
         "Jobs failed because no live shard remained."),
        ("auth_rejects", "repro_mesh_auth_rejects_total",
         "Connections rejected for a bad or missing token."),
        ("quota_rejects", "repro_mesh_quota_rejects_total",
         "Submissions rejected by the per-client quota."),
    )
    for field, name, help_text in router_counters:
        out.family(name, "counter", help_text)
        out.sample(name, router.get(field, 0))
    out.family("repro_mesh_shard_routed_total", "counter",
               "Jobs routed per shard.")
    for shard_key, count in router.get("per_shard", {}).items():
        out.sample("repro_mesh_shard_routed_total", count,
                   {"shard": shard_key})
    out.family("repro_mesh_uptime_seconds", "gauge",
               "Seconds since the router started.")
    out.sample("repro_mesh_uptime_seconds",
               mesh.get("uptime_seconds", 0.0))


class MetricsExporter:
    """A threaded HTTP sidecar serving ``/metrics`` for one service."""

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port                 # 0: ephemeral; rebound on start
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> int:
        """Bind and serve on a daemon thread; returns the bound port."""
        exporter = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):          # noqa: N802 — http.server API
                if self.path == "/metrics":
                    body = render_prometheus(
                        exporter.service.status()).encode("utf-8")
                    self._reply(200, CONTENT_TYPE, body)
                elif self.path == "/healthz":
                    self._reply(200, "text/plain; charset=utf-8",
                                b"ok\n")
                elif self.path == "/status":
                    body = json.dumps(
                        exporter.service.status()).encode("utf-8")
                    self._reply(200, "application/json", body)
                else:
                    self._reply(404, "text/plain; charset=utf-8",
                                b"not found\n")

            def _reply(self, code: int, content_type: str,
                       body: bytes) -> None:
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:
                pass    # scrape noise stays out of stderr; the bind
                        # itself is logged as a structured event below

        self._httpd = ThreadingHTTPServer((self.host, self.port),
                                          Handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics",
            daemon=True)
        self._thread.start()
        self.service.log.info("metrics.listen", host=self.host,
                              port=self.port)
        return self.port

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def __enter__(self) -> "MetricsExporter":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
