"""Blocking JSON-lines client for the optimization service.

Used by ``repro submit`` / ``repro campaign`` / ``repro status``, the
mesh router's shard connections, and the tests.  One client holds one
connection; submits may be pipelined (:meth:`submit_many` writes every
request before reading any reply) and replies are matched back to
requests by the client-assigned job id, so out-of-order completion is
fine.  :meth:`submit_campaign` round-trips a whole multi-round campaign
and blocks until the aggregated detection matrix comes back.

Connecting is politely retried: a service that is mid-restart answers
``ConnectionRefusedError`` for a moment, so the constructor retries up
to ``connect_retries`` times with deterministic geometric backoff
before giving up (``connect_retries=0`` restores the old fail-fast
behavior — the mesh health checker wants exactly one cheap attempt).
``connect_timeout`` bounds each attempt separately from the per-request
``timeout``.

``token`` authenticates against a mesh router
(:class:`~repro.service.mesh.MeshServer`): the shared secret is sent as
an ``auth`` message immediately after connecting, and a rejection
raises :class:`~repro.service.protocol.AuthenticationError`.
"""

from __future__ import annotations

import itertools
import socket
import time
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.service.protocol import (
    CampaignResult,
    CampaignSpec,
    JobResult,
    JobSpec,
    ProtocolError,
    auth_to_wire,
    campaign_result_from_wire,
    campaign_to_wire,
    decode_line,
    encode_line,
    probe_to_wire,
    raise_for_error,
    result_from_wire,
    spec_to_wire,
)

#: Connect errors worth retrying: the far side is plausibly mid-restart.
_RETRYABLE_CONNECT = (ConnectionRefusedError, ConnectionResetError,
                      ConnectionAbortedError, TimeoutError)


def _connect_with_retry(host: str, port: int,
                        connect_timeout: Optional[float],
                        retries: int, backoff: float,
                        sleep=time.sleep) -> socket.socket:
    """``socket.create_connection`` with bounded retry + geometric
    backoff (delays ``backoff, 2*backoff, ...`` — deterministic, like
    the LLM transport's RetryPolicy)."""
    attempt = 0
    while True:
        try:
            return socket.create_connection((host, port),
                                            timeout=connect_timeout)
        except _RETRYABLE_CONNECT:
            if attempt >= retries:
                raise
            sleep(backoff * (2 ** attempt))
            attempt += 1


class ServiceClient:
    """A synchronous connection to a running :class:`ServiceServer`
    (or a :class:`~repro.service.mesh.MeshServer` router)."""

    def __init__(self, port: int, host: str = "127.0.0.1",
                 timeout: Optional[float] = 120.0,
                 connect_timeout: Optional[float] = None,
                 connect_retries: int = 2,
                 connect_backoff: float = 0.1,
                 token: Optional[str] = None,
                 client_name: str = ""):
        self.host = host
        self.port = port
        self._sock = _connect_with_retry(
            host, port,
            connect_timeout if connect_timeout is not None else timeout,
            max(0, int(connect_retries)), connect_backoff)
        self._sock.settimeout(timeout)
        self._recv = self._sock.makefile("rb")
        self._ids = itertools.count(1)
        if token is not None:
            self._authenticate(token, client_name)

    def _authenticate(self, token: str, client_name: str) -> None:
        self._send(auth_to_wire(token, client=client_name))
        message = self._read()
        if message.get("type") != "auth_ok":
            raise ProtocolError(
                f"expected auth_ok, got {message.get('type')!r}")

    # -- plumbing ----------------------------------------------------------
    def _send(self, message: dict) -> None:
        self._sock.sendall(encode_line(message))

    def _read(self) -> dict:
        line = self._recv.readline()
        if not line:
            raise ReproError("service closed the connection")
        message = decode_line(line)
        # Coded errors (auth/quota) are typed client-side exceptions
        # everywhere; uncoded errors stay caller-handled (e.g. per-job
        # error results in submit_many).
        raise_for_error(message)
        return message

    def close(self) -> None:
        try:
            self._recv.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- requests ----------------------------------------------------------
    def submit(self, spec: JobSpec,
               raise_wire_errors: bool = False) -> JobResult:
        """Round-trip one job."""
        return self.submit_many(
            [spec], raise_wire_errors=raise_wire_errors)[0]

    def submit_ir(self, ir: str, **spec_kwargs) -> JobResult:
        """Convenience: wrap IR text in a :class:`JobSpec` and submit."""
        return self.submit(JobSpec(ir=ir, **spec_kwargs))

    def submit_many(self, specs: Sequence[JobSpec],
                    raise_wire_errors: bool = False) -> List[JobResult]:
        """Pipeline a batch of jobs; results in submission order.

        The wire distinguishes a job *answer* (a ``result`` message,
        even one with ``status="error"`` — e.g. unparseable IR) from a
        server-side *exception* (an ``error`` message: a dying server,
        a full queue).  By default both become :class:`JobResult`\\ s so
        plain callers always get one result per spec; with
        ``raise_wire_errors=True`` server-side exceptions raise
        :class:`ReproError` instead — the mesh router uses this to
        fail a job over to another shard rather than returning a
        dying shard's excuse as the answer."""
        tagged: List[str] = []
        pending = set()
        for spec in specs:
            job_id = spec.job_id or f"c{next(self._ids)}"
            if job_id in pending:
                raise ReproError(f"duplicate client job id {job_id!r}")
            tagged.append(job_id)
            pending.add(job_id)
            self._send(spec_to_wire(replace(spec, job_id=job_id)))
        results: Dict[str, JobResult] = {}
        while pending:
            message = self._read()
            mtype = message.get("type")
            if mtype == "result":
                result = result_from_wire(message)
                if result.job_id not in pending:
                    raise ProtocolError(
                        f"unexpected result for {result.job_id!r}")
                pending.discard(result.job_id)
                results[result.job_id] = result
            elif mtype == "error":
                job_id = message.get("job_id", "")
                error = message.get("message", "service error")
                if raise_wire_errors:
                    raise ReproError(error)
                if job_id in pending:
                    pending.discard(job_id)
                    results[job_id] = JobResult(
                        job_id=job_id, ok=False, status="error",
                        error=error)
                else:
                    raise ReproError(error)
            else:
                raise ProtocolError(
                    f"unexpected message type {mtype!r}")
        return [results[job_id] for job_id in tagged]

    def submit_campaign(self, spec: CampaignSpec) -> CampaignResult:
        """Round-trip one multi-round campaign (blocks until the
        service has run every leg/round and replies with the
        aggregated detection matrix)."""
        campaign_id = spec.campaign_id or f"c{next(self._ids)}"
        self._send(campaign_to_wire(
            replace(spec, campaign_id=campaign_id)))
        message = self._read()
        mtype = message.get("type")
        if mtype == "error":
            raise ReproError(message.get("message", "service error"))
        if mtype != "campaign_result":
            raise ProtocolError(
                f"expected campaign_result, got {mtype!r}")
        return campaign_result_from_wire(message)

    def probe(self, digest: str) -> bool:
        """Does the serving side's job cache hold ``digest``?  (The
        mesh router's cache-federation primitive — nothing runs.)"""
        self._send(probe_to_wire(digest))
        message = self._read()
        if message.get("type") != "probe_reply":
            raise ProtocolError(
                f"expected probe_reply, got {message.get('type')!r}")
        return bool(message.get("hit"))

    def status(self) -> dict:
        """The service's metrics/pool snapshot."""
        self._send({"type": "status"})
        message = self._read()
        if message.get("type") != "status_reply":
            raise ProtocolError(
                f"expected status_reply, got {message.get('type')!r}")
        return message.get("status", {})

    def shutdown(self) -> None:
        """Ask the server to stop accepting connections."""
        self._send({"type": "shutdown"})
        message = self._read()
        if message.get("type") != "shutting_down":
            raise ProtocolError(
                f"expected shutting_down, got {message.get('type')!r}")
