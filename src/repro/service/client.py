"""Blocking JSON-lines client for the optimization service.

Used by ``repro submit`` / ``repro campaign`` / ``repro status`` and
the tests.  One client holds one connection; submits may be pipelined
(:meth:`submit_many` writes every request before reading any reply) and
replies are matched back to requests by the client-assigned job id, so
out-of-order completion is fine.  :meth:`submit_campaign` round-trips a
whole multi-round campaign and blocks until the aggregated detection
matrix comes back.
"""

from __future__ import annotations

import itertools
import socket
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.service.protocol import (
    CampaignResult,
    CampaignSpec,
    JobResult,
    JobSpec,
    ProtocolError,
    campaign_result_from_wire,
    campaign_to_wire,
    decode_line,
    encode_line,
    result_from_wire,
    spec_to_wire,
)


class ServiceClient:
    """A synchronous connection to a running :class:`ServiceServer`."""

    def __init__(self, port: int, host: str = "127.0.0.1",
                 timeout: Optional[float] = 120.0):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._recv = self._sock.makefile("rb")
        self._ids = itertools.count(1)

    # -- plumbing ----------------------------------------------------------
    def _send(self, message: dict) -> None:
        self._sock.sendall(encode_line(message))

    def _read(self) -> dict:
        line = self._recv.readline()
        if not line:
            raise ReproError("service closed the connection")
        return decode_line(line)

    def close(self) -> None:
        try:
            self._recv.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- requests ----------------------------------------------------------
    def submit(self, spec: JobSpec) -> JobResult:
        """Round-trip one job."""
        return self.submit_many([spec])[0]

    def submit_ir(self, ir: str, **spec_kwargs) -> JobResult:
        """Convenience: wrap IR text in a :class:`JobSpec` and submit."""
        return self.submit(JobSpec(ir=ir, **spec_kwargs))

    def submit_many(self, specs: Sequence[JobSpec]) -> List[JobResult]:
        """Pipeline a batch of jobs; results in submission order."""
        tagged: List[str] = []
        pending = set()
        for spec in specs:
            job_id = spec.job_id or f"c{next(self._ids)}"
            if job_id in pending:
                raise ReproError(f"duplicate client job id {job_id!r}")
            tagged.append(job_id)
            pending.add(job_id)
            self._send(spec_to_wire(replace(spec, job_id=job_id)))
        results: Dict[str, JobResult] = {}
        while pending:
            message = self._read()
            mtype = message.get("type")
            if mtype == "result":
                result = result_from_wire(message)
                if result.job_id not in pending:
                    raise ProtocolError(
                        f"unexpected result for {result.job_id!r}")
                pending.discard(result.job_id)
                results[result.job_id] = result
            elif mtype == "error":
                job_id = message.get("job_id", "")
                error = message.get("message", "service error")
                if job_id in pending:
                    pending.discard(job_id)
                    results[job_id] = JobResult(
                        job_id=job_id, ok=False, status="error",
                        error=error)
                else:
                    raise ReproError(error)
            else:
                raise ProtocolError(
                    f"unexpected message type {mtype!r}")
        return [results[job_id] for job_id in tagged]

    def submit_campaign(self, spec: CampaignSpec) -> CampaignResult:
        """Round-trip one multi-round campaign (blocks until the
        service has run every leg/round and replies with the
        aggregated detection matrix)."""
        campaign_id = spec.campaign_id or f"c{next(self._ids)}"
        self._send(campaign_to_wire(
            replace(spec, campaign_id=campaign_id)))
        message = self._read()
        mtype = message.get("type")
        if mtype == "error":
            raise ReproError(message.get("message", "service error"))
        if mtype != "campaign_result":
            raise ProtocolError(
                f"expected campaign_result, got {mtype!r}")
        return campaign_result_from_wire(message)

    def status(self) -> dict:
        """The service's metrics/pool snapshot."""
        self._send({"type": "status"})
        message = self._read()
        if message.get("type") != "status_reply":
            raise ProtocolError(
                f"expected status_reply, got {message.get('type')!r}")
        return message.get("status", {})

    def shutdown(self) -> None:
        """Ask the server to stop accepting connections."""
        self._send({"type": "shutdown"})
        message = self._read()
        if message.get("type") != "shutting_down":
            raise ProtocolError(
                f"expected shutting_down, got {message.get('type')!r}")
