"""Wire protocol of the optimization service.

Messages are newline-delimited JSON objects ("JSON lines"), each with a
``type`` field:

* ``{"type": "submit", "job": {...}}``        — client → server
* ``{"type": "result", "result": {...}}``     — server → client
* ``{"type": "status"}``                       — client → server
* ``{"type": "status_reply", "status": {...}}``— server → client
* ``{"type": "shutdown"}``                     — client → server
* ``{"type": "error", "message": "..."}``      — server → client

Submits may be pipelined: a client can write many submit lines before
reading results; each result line carries the submitting side's
``job_id`` so replies can arrive out of order.  The dataclasses here are
the in-process currency too — the worker pool and the job cache consume
:class:`JobSpec` / produce :class:`JobResult` directly.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

from repro.errors import ParseError, ReproError

PROTOCOL_VERSION = 1


class ProtocolError(ReproError):
    """A malformed or out-of-contract service message."""


@dataclass
class JobSpec:
    """One window-optimization request.

    ``ir`` is the window's textual IR; ``round_seed`` keys the simulated
    model's sampling, ``attempt_limit`` bounds the feedback loop.  The
    server assigns ``job_id`` when the submitter leaves it empty.
    """

    ir: str
    model: str = "Gemini2.0T"
    round_seed: int = 0
    attempt_limit: int = 2
    job_id: str = ""
    #: Submitter-side correlation tag, echoed verbatim in the result.
    tag: str = ""


@dataclass
class JobResult:
    """The service's verdict on one job."""

    job_id: str
    ok: bool
    status: str                      # WindowResult.status, or "error"
    found: bool = False
    candidate_text: str = ""
    elapsed_seconds: float = 0.0     # in-worker compute time
    latency_seconds: float = 0.0     # submit → completion, queue included
    attempts: int = 0
    cached: bool = False             # served from the job cache
    retries: int = 0                 # worker crashes survived
    error: str = ""
    tag: str = ""

    def render(self) -> str:
        origin = "cache" if self.cached else "worker"
        head = f"{self.job_id}: {self.status} [{origin}]"
        if self.error:
            head += f" ({self.error})"
        return head


def job_digest(spec: JobSpec, llm_seed: int = 0) -> str:
    """The job-cache key: structural over the window when it parses
    (whitespace/name-insensitive), textual otherwise, plus every knob
    that can change the verdict — including the serving side's
    ``llm_seed``, so a persisted cache never answers for a service
    configured with a different sampling seed.  ``job_id``/``tag`` are
    correlation metadata and deliberately excluded."""
    from repro.core.dedup import window_digest
    from repro.ir.parser import parse_function

    try:
        ir_key = window_digest(parse_function(spec.ir))
    except ParseError:
        ir_key = hashlib.sha256(spec.ir.encode()).hexdigest()
    payload = (f"{spec.model}|{spec.round_seed}|{spec.attempt_limit}|"
               f"{llm_seed}|{ir_key}")
    return hashlib.sha256(payload.encode()).hexdigest()


# -- JSON-lines framing ----------------------------------------------------
def encode_line(message: dict) -> bytes:
    """One wire message: compact JSON + newline."""
    return (json.dumps(message, separators=(",", ":"))
            + "\n").encode("utf-8")


def decode_line(line: bytes) -> dict:
    """Parse one wire line; raises :class:`ProtocolError` on junk."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable message: {exc}") from None
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("message must be an object with a 'type'")
    return message


def _from_wire(cls, payload, what: str):
    if not isinstance(payload, dict):
        raise ProtocolError(f"{what} payload must be an object")
    fields = {f.name for f in cls.__dataclass_fields__.values()}
    unknown = set(payload) - fields
    if unknown:
        raise ProtocolError(f"unknown {what} field(s): "
                            f"{', '.join(sorted(unknown))}")
    try:
        return cls(**payload)
    except TypeError as exc:
        raise ProtocolError(f"bad {what}: {exc}") from None


def spec_to_wire(spec: JobSpec) -> dict:
    return {"type": "submit", "version": PROTOCOL_VERSION,
            "job": asdict(spec)}


def spec_from_wire(message: dict) -> JobSpec:
    spec = _from_wire(JobSpec, message.get("job"), "job")
    if not isinstance(spec.ir, str) or not spec.ir.strip():
        raise ProtocolError("job.ir must be non-empty IR text")
    return spec


def result_to_wire(result: JobResult) -> dict:
    return {"type": "result", "version": PROTOCOL_VERSION,
            "result": asdict(result)}


def result_from_wire(message: dict) -> JobResult:
    return _from_wire(JobResult, message.get("result"), "result")
