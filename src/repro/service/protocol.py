"""Wire protocol of the optimization service.

Messages are newline-delimited JSON objects ("JSON lines"), each with a
``type`` field:

* ``{"type": "submit", "job": {...}}``        — client → server
* ``{"type": "result", "result": {...}}``     — server → client
* ``{"type": "campaign", "campaign": {...}}`` — client → server
* ``{"type": "campaign_result", "result": {...}}`` — server → client
* ``{"type": "status"}``                       — client → server
* ``{"type": "status_reply", "status": {...}}``— server → client
* ``{"type": "probe", "digest": "..."}``       — client → server
* ``{"type": "probe_reply", "digest": "...", "hit": bool}`` — server → client
* ``{"type": "auth", "token": "...", "client": "..."}`` — client → server
* ``{"type": "auth_ok"}``                      — server → client
* ``{"type": "shutdown"}``                     — client → server
* ``{"type": "error", "message": "..."}``      — server → client

Error replies may carry a ``code`` field naming a typed failure class:
``"auth"`` (bad or missing shared-secret token — the mesh router's
tenancy gate) and ``"quota"`` (the submitting client is over its
in-flight quota; backpressure, retry after results drain).  Clients map
those codes back to :class:`AuthenticationError` /
:class:`QuotaExceededError`.  ``probe`` asks whether the serving side's
job cache holds a given digest *without* running anything — the mesh
router's cache-federation primitive.

Submits may be pipelined: a client can write many submit lines before
reading results; each result line carries the submitting side's
``job_id`` so replies can arrive out of order.  The dataclasses here are
the in-process currency too — the worker pool and the job cache consume
:class:`JobSpec` / produce :class:`JobResult` directly, and
:class:`CampaignSpec` / :class:`CampaignResult` are what
``OptimizationService.run_campaign`` and the in-process rq1 runner
exchange.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List

from repro import errors
from repro.errors import (
    BackendError,
    BackendTimeoutError,
    ParseError,
    QuotaExceededError,
    ReproError,
    ServiceBusyError,
    WorkerCrashError,
)

PROTOCOL_VERSION = 1


class ProtocolError(ReproError):
    """A malformed or out-of-contract service message."""


class AuthenticationError(errors.AuthenticationError, ProtocolError):
    """The mesh rejected a request's shared-secret token (wire error
    ``code="auth"``).

    Doubly based: it *is* the taxonomy's
    :class:`repro.errors.AuthenticationError` (one hierarchy for
    clients) and it stays a :class:`ProtocolError` (the router/server
    handshake paths catch that).
    """


# QuotaExceededError lives in repro.errors now (the one client-facing
# taxonomy); re-exported from its historical wire-protocol home.

#: Wire error ``code`` → the typed exception clients raise for it.
#: Every coded class of the repro.errors taxonomy is listed, so any
#: server that tags an error with a stable code gets a typed exception
#: client-side for free (today only auth/quota ride the wire coded).
ERROR_CODES = {
    AuthenticationError.code: AuthenticationError,
    QuotaExceededError.code: QuotaExceededError,
    ServiceBusyError.code: ServiceBusyError,
    WorkerCrashError.code: WorkerCrashError,
    BackendError.code: BackendError,
    BackendTimeoutError.code: BackendTimeoutError,
}


def error_to_wire(message: str, code: str = "", **extra) -> dict:
    """An error reply; ``code`` marks a typed failure class
    (see :data:`ERROR_CODES`)."""
    reply = {"type": "error", "message": message}
    if code:
        reply["code"] = code
    reply.update(extra)
    return reply


def raise_for_error(message: dict) -> None:
    """Raise the typed exception for a coded error reply (no-op for
    non-error messages and uncoded errors — those stay caller-handled,
    e.g. per-job error results)."""
    if message.get("type") != "error":
        return
    exc_type = ERROR_CODES.get(message.get("code", ""))
    if exc_type is not None:
        raise exc_type(message.get("message", "service error"))


@dataclass
class JobSpec:
    """One window-optimization request.

    ``ir`` is the window's textual IR; ``model`` is a *model spec*
    resolved server-side through
    :func:`repro.llm.backends.resolve_backend` (a bare profile name
    like the default, ``sim:Name?seed=N``, or an OpenAI-compatible
    ``http://host:port/model`` endpoint — an empty string asks for the
    service's configured default); ``round_seed`` keys the model's
    sampling, ``attempt_limit`` bounds the feedback loop.  The server
    assigns ``job_id`` when the submitter leaves it empty.
    """

    ir: str
    model: str = "Gemini2.0T"
    round_seed: int = 0
    attempt_limit: int = 2
    job_id: str = ""
    #: Submitter-side correlation tag, echoed verbatim in the result.
    tag: str = ""


@dataclass
class JobResult:
    """The service's verdict on one job."""

    job_id: str
    ok: bool
    status: str                      # WindowResult.status, or "error"
    found: bool = False
    candidate_text: str = ""
    elapsed_seconds: float = 0.0     # in-worker compute time
    latency_seconds: float = 0.0     # submit → completion, queue included
    attempts: int = 0
    cached: bool = False             # served from the job cache
    retries: int = 0                 # worker crashes survived
    cost_usd: float = 0.0            # LLM spend (0 for cached jobs)
    error: str = ""
    tag: str = ""

    def render(self) -> str:
        origin = "cache" if self.cached else "worker"
        head = f"{self.job_id}: {self.status} [{origin}]"
        if self.error:
            head += f" ({self.error})"
        return head


def _window_key(ir: str) -> str:
    """Structural digest of one window when it parses
    (whitespace/name-insensitive), textual otherwise."""
    from repro.core.dedup import window_digest
    from repro.ir.parser import parse_function

    try:
        return window_digest(parse_function(ir))
    except ParseError:
        return hashlib.sha256(ir.encode()).hexdigest()


def job_digest(spec: JobSpec, llm_seed: int = 0) -> str:
    """The job-cache key: structural over the window when it parses
    (whitespace/name-insensitive), textual otherwise, plus every knob
    that can change the verdict — including the serving side's
    ``llm_seed``, so a persisted cache never answers for a service
    configured with a different sampling seed.  ``job_id``/``tag`` are
    correlation metadata and deliberately excluded."""
    payload = (f"{spec.model}|{spec.round_seed}|{spec.attempt_limit}|"
               f"{llm_seed}|{_window_key(spec.ir)}")
    return hashlib.sha256(payload.encode()).hexdigest()


# -- campaigns -------------------------------------------------------------
@dataclass
class CampaignSpec:
    """A multi-round, multi-leg experiment run as one service job.

    ``windows`` is the corpus (one textual IR window per case);
    ``case_ids`` are the labels the detection matrix is keyed by
    (defaults to window indices).  Each ``(model, variant)`` pair is a
    *leg*: ``models`` holds model specs (bare names, ``sim:``, or
    ``http://`` — see :class:`JobSpec`), and ``variants`` maps a
    variant name to its attempt limit (the paper's LPO− is the
    single-attempt ablation).  Every leg runs ``rounds`` rounds; round
    *i* samples with ``seeds[i]`` (defaults to ``i``, matching the
    in-process rq1 loop).
    """

    windows: List[str] = field(default_factory=list)
    case_ids: List[str] = field(default_factory=list)
    rounds: int = 5
    models: List[str] = field(
        default_factory=lambda: ["Gemini2.0T"])
    #: ``[variant_name, attempt_limit]`` pairs, run in order per model.
    variants: List[list] = field(
        default_factory=lambda: [["LPO-", 1], ["LPO", 2]])
    seeds: List[int] = field(default_factory=list)
    #: Stop-loss in dollars (0: unlimited).  A leg finishes the round
    #: that crosses the budget, then the campaign stops cleanly with
    #: ``budget_exhausted`` set — never mid-wavefront.
    budget_usd: float = 0.0
    campaign_id: str = ""
    #: Submitter-side correlation tag, echoed verbatim in the result.
    tag: str = ""

    def resolved_case_ids(self) -> List[str]:
        if self.case_ids:
            return [str(case_id) for case_id in self.case_ids]
        return [str(index) for index in range(len(self.windows))]

    def resolved_seeds(self) -> List[int]:
        if self.seeds:
            return list(self.seeds)
        return list(range(self.rounds))

    def validate(self) -> None:
        """Raise :class:`ProtocolError` on a structurally bad spec."""
        if not self.windows:
            raise ProtocolError("campaign.windows must be non-empty")
        if any(not isinstance(ir, str) or not ir.strip()
               for ir in self.windows):
            raise ProtocolError(
                "campaign.windows must all be non-empty IR text")
        if self.case_ids and len(self.case_ids) != len(self.windows):
            raise ProtocolError(
                f"campaign.case_ids ({len(self.case_ids)}) must match "
                f"windows ({len(self.windows)})")
        resolved = self.resolved_case_ids()
        if len(set(resolved)) != len(resolved):
            raise ProtocolError(
                "campaign.case_ids must be unique (counts are keyed "
                "by them)")
        if self.rounds < 1:
            raise ProtocolError("campaign.rounds must be >= 1")
        if not self.models:
            raise ProtocolError("campaign.models must be non-empty")
        if not self.variants:
            raise ProtocolError("campaign.variants must be non-empty")
        for variant in self.variants:
            if (len(variant) != 2 or not isinstance(variant[0], str)
                    or not isinstance(variant[1], int)
                    or variant[1] < 1):
                raise ProtocolError(
                    "campaign.variants entries must be "
                    "[name, attempt_limit >= 1] pairs")
        if self.seeds and len(self.seeds) != self.rounds:
            raise ProtocolError(
                f"campaign.seeds ({len(self.seeds)}) must match "
                f"rounds ({self.rounds})")
        if not isinstance(self.budget_usd, (int, float)) \
                or self.budget_usd < 0:
            raise ProtocolError("campaign.budget_usd must be >= 0")


@dataclass
class CampaignResult:
    """The aggregated detection matrix of one campaign.

    ``counts`` maps a leg key (:meth:`leg_key`) to ``case_id ->``
    detections over all rounds; ``detections_per_round`` maps the same
    leg key to the number of windows detected in each round.  Latency
    percentiles cover the campaign's own jobs only (all zero on the
    in-process path, where jobs never traverse a queue).
    """

    campaign_id: str
    ok: bool
    rounds: int = 0
    case_ids: List[str] = field(default_factory=list)
    counts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    detections_per_round: Dict[str, List[int]] = field(
        default_factory=dict)
    jobs: int = 0
    cached_jobs: int = 0
    failed_jobs: int = 0
    elapsed_seconds: float = 0.0
    latency: Dict[str, float] = field(default_factory=dict)
    #: Total LLM spend across every leg ($; cached jobs cost nothing).
    spend_usd: float = 0.0
    #: True when a ``budget_usd`` cap stopped the campaign early; the
    #: matrix then covers only the rounds that actually ran.
    budget_exhausted: bool = False
    error: str = ""
    tag: str = ""

    @staticmethod
    def leg_key(model: str, variant: str) -> str:
        return f"{model}/{variant}"

    @staticmethod
    def split_leg_key(key: str) -> tuple:
        model, _, variant = key.rpartition("/")
        return model, variant

    def total_detected(self, model: str, variant: str) -> int:
        counts = self.counts.get(self.leg_key(model, variant), {})
        return sum(1 for count in counts.values() if count > 0)

    def render(self) -> str:
        head = (f"{self.campaign_id}: {self.jobs} jobs over "
                f"{self.rounds} rounds, {self.cached_jobs} cached, "
                f"{self.failed_jobs} failed")
        if self.spend_usd:
            head += f", ${self.spend_usd:.4f} spent"
        if self.budget_exhausted:
            head += " [budget exhausted]"
        if self.error:
            head += f" ({self.error})"
        return head


def campaign_digest(spec: CampaignSpec, llm_seed: int = 0) -> str:
    """Structural identity of a campaign: window digests plus every
    knob that can change the matrix (models, variants, rounds, resolved
    seeds, and the serving side's ``llm_seed``).  ``case_ids``,
    ``campaign_id`` and ``tag`` are presentation/correlation metadata
    and deliberately excluded."""
    parts = [f"rounds={spec.rounds}",
             "models=" + ",".join(spec.models),
             "variants=" + ",".join(f"{name}:{limit}" for name, limit
                                    in spec.variants),
             "seeds=" + ",".join(str(seed) for seed
                                 in spec.resolved_seeds()),
             f"llm_seed={llm_seed}"]
    # A stop-loss changes which rounds run, so it is identity — but
    # only when set, keeping every pre-budget digest stable.
    if spec.budget_usd:
        parts.append(f"budget={spec.budget_usd}")
    parts.extend(_window_key(ir) for ir in spec.windows)
    return hashlib.sha256("|".join(parts).encode()).hexdigest()


# -- JSON-lines framing ----------------------------------------------------
def encode_line(message: dict) -> bytes:
    """One wire message: compact JSON + newline."""
    return (json.dumps(message, separators=(",", ":"))
            + "\n").encode("utf-8")


def decode_line(line: bytes) -> dict:
    """Parse one wire line; raises :class:`ProtocolError` on junk."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable message: {exc}") from None
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("message must be an object with a 'type'")
    return message


def _from_wire(cls, payload, what: str):
    if not isinstance(payload, dict):
        raise ProtocolError(f"{what} payload must be an object")
    fields = {f.name for f in cls.__dataclass_fields__.values()}
    unknown = set(payload) - fields
    if unknown:
        raise ProtocolError(f"unknown {what} field(s): "
                            f"{', '.join(sorted(unknown))}")
    try:
        return cls(**payload)
    except TypeError as exc:
        raise ProtocolError(f"bad {what}: {exc}") from None


def spec_to_wire(spec: JobSpec) -> dict:
    return {"type": "submit", "version": PROTOCOL_VERSION,
            "job": asdict(spec)}


def spec_from_wire(message: dict) -> JobSpec:
    spec = _from_wire(JobSpec, message.get("job"), "job")
    if not isinstance(spec.ir, str) or not spec.ir.strip():
        raise ProtocolError("job.ir must be non-empty IR text")
    return spec


def result_to_wire(result: JobResult) -> dict:
    return {"type": "result", "version": PROTOCOL_VERSION,
            "result": asdict(result)}


def result_from_wire(message: dict) -> JobResult:
    return _from_wire(JobResult, message.get("result"), "result")


def campaign_to_wire(spec: CampaignSpec) -> dict:
    return {"type": "campaign", "version": PROTOCOL_VERSION,
            "campaign": asdict(spec)}


def campaign_from_wire(message: dict) -> CampaignSpec:
    spec = _from_wire(CampaignSpec, message.get("campaign"), "campaign")
    spec.validate()
    return spec


def campaign_result_to_wire(result: CampaignResult) -> dict:
    return {"type": "campaign_result", "version": PROTOCOL_VERSION,
            "result": asdict(result)}


def campaign_result_from_wire(message: dict) -> CampaignResult:
    return _from_wire(CampaignResult, message.get("result"),
                      "campaign result")


def probe_to_wire(digest: str) -> dict:
    return {"type": "probe", "version": PROTOCOL_VERSION,
            "digest": digest}


def probe_from_wire(message: dict) -> str:
    digest = message.get("digest")
    if not isinstance(digest, str) or not digest:
        raise ProtocolError("probe.digest must be a non-empty string")
    return digest


def auth_to_wire(token: str, client: str = "") -> dict:
    return {"type": "auth", "version": PROTOCOL_VERSION,
            "token": token, "client": client}
