"""The persistent optimization service.

A long-lived daemon around the LPO loop: jobs (one window each) enter a
bounded queue, fan over a persistent worker pool whose workers each hold
a warm :class:`~repro.core.pipeline.LPOPipeline`, and memoize through a
sharded :class:`~repro.core.cache.ShardedResultCache` so a resubmitted
corpus is served from cache.  The service speaks a JSON-lines socket
protocol (``repro serve`` / ``repro submit`` / ``repro status``) and an
equivalent in-process API.
"""

from repro.service.client import ServiceClient
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    PROTOCOL_VERSION,
    JobResult,
    JobSpec,
    ProtocolError,
    decode_line,
    encode_line,
    job_digest,
    result_from_wire,
    result_to_wire,
    spec_from_wire,
    spec_to_wire,
)
from repro.service.server import (
    OptimizationService,
    ServiceBusyError,
    ServiceServer,
)
from repro.service.workers import WorkerCrashError, WorkerPool

__all__ = [
    "ServiceClient",
    "ServiceMetrics",
    "PROTOCOL_VERSION", "JobResult", "JobSpec", "ProtocolError",
    "decode_line", "encode_line", "job_digest",
    "result_from_wire", "result_to_wire",
    "spec_from_wire", "spec_to_wire",
    "OptimizationService", "ServiceBusyError", "ServiceServer",
    "WorkerCrashError", "WorkerPool",
]
