"""The persistent optimization service.

A long-lived daemon around the LPO loop: jobs (one window each) enter a
bounded queue, fan over a persistent worker pool whose workers each hold
a warm :class:`~repro.core.pipeline.LPOPipeline`, and memoize through a
sharded :class:`~repro.core.cache.ShardedResultCache` so a resubmitted
corpus is served from cache.  The service speaks a JSON-lines socket
protocol (``repro serve`` / ``repro submit`` / ``repro status``) and an
equivalent in-process API.

Beyond one-shot jobs, the service runs *campaigns*
(:class:`CampaignSpec` → :class:`CampaignResult`): an rq1-style
multi-round, multi-leg experiment expanded server-side into per-window
round jobs that share the queue, job cache, and single-flight dedup —
the ``repro campaign`` command submits one over the socket and renders
the returned detection matrix.  Corpora can also *stream in*:
``repro submit --watch DIR`` feeds newly appearing ``.ll`` files to a
running service (with backpressure-aware pacing), and
``repro submit --stdin`` reads module paths from stdin as they arrive.

Past one box, the *mesh* (:class:`MeshRouter` / ``repro mesh serve``)
fronts N ``repro serve`` shards behind the same protocol: jobs
consistent-hash by :func:`job_digest` across the fleet, failed shards
fail over, warm caches federate, and ``repro status --mesh`` /
``/metrics`` present :func:`federate_status`-summed fleet totals.

Walkthrough (three shells, or background the first)::

    $ repro serve --port 7777 --jobs 4 &
    $ repro campaign --port 7777 --rounds 5    # rq1 matrix, server-side
    $ repro submit --watch drops/ --port 7777  # stream new .ll files
    $ cp new_module.ll drops/                  # picked up + submitted
    $ repro status --port 7777                 # campaign + job metrics

Mesh walkthrough::

    $ repro serve --port 7777 &
    $ repro serve --port 7778 &
    $ repro mesh serve --port 7000 \\
          --shard 127.0.0.1:7777 --shard 127.0.0.1:7778 &
    $ repro campaign --port 7000 --rounds 5    # fans out across shards
    $ repro status --port 7000 --mesh          # fleet totals
"""

from repro.service.campaign import (
    CampaignLeg,
    RoundOutcome,
    campaign_legs,
    execute_campaign,
)
from repro.service.client import ServiceClient
from repro.service.exporter import MetricsExporter, render_prometheus
from repro.service.mesh import (
    HashRing,
    MeshRouter,
    MeshServer,
    ShardEndpoint,
    federate_status,
    parse_shard,
    read_shards_file,
    write_shards_file,
)
from repro.service.metrics import (
    LATENCY_BUCKETS,
    Histogram,
    ServiceMetrics,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    AuthenticationError,
    CampaignResult,
    CampaignSpec,
    JobResult,
    JobSpec,
    ProtocolError,
    QuotaExceededError,
    campaign_digest,
    campaign_from_wire,
    campaign_result_from_wire,
    campaign_result_to_wire,
    campaign_to_wire,
    decode_line,
    encode_line,
    job_digest,
    result_from_wire,
    result_to_wire,
    spec_from_wire,
    spec_to_wire,
)
from repro.service.server import (
    OptimizationService,
    ServiceBusyError,
    ServiceServer,
)
from repro.service.workers import WorkerCrashError, WorkerPool

__all__ = [
    "CampaignLeg", "RoundOutcome", "campaign_legs", "execute_campaign",
    "ServiceClient",
    "MetricsExporter", "render_prometheus",
    "HashRing", "MeshRouter", "MeshServer", "ShardEndpoint",
    "federate_status", "parse_shard", "read_shards_file",
    "write_shards_file",
    "LATENCY_BUCKETS", "Histogram", "ServiceMetrics",
    "PROTOCOL_VERSION", "AuthenticationError", "CampaignResult",
    "CampaignSpec", "JobResult", "JobSpec", "ProtocolError",
    "QuotaExceededError",
    "campaign_digest", "campaign_from_wire",
    "campaign_result_from_wire", "campaign_result_to_wire",
    "campaign_to_wire",
    "decode_line", "encode_line", "job_digest",
    "result_from_wire", "result_to_wire",
    "spec_from_wire", "spec_to_wire",
    "OptimizationService", "ServiceBusyError", "ServiceServer",
    "WorkerCrashError", "WorkerPool",
]
