"""The persistent optimization service.

A long-lived daemon around the LPO loop: jobs (one window each) enter a
bounded queue, fan over a persistent worker pool whose workers each hold
a warm :class:`~repro.core.pipeline.LPOPipeline`, and memoize through a
sharded :class:`~repro.core.cache.ShardedResultCache` so a resubmitted
corpus is served from cache.  The service speaks a JSON-lines socket
protocol (``repro serve`` / ``repro submit`` / ``repro status``) and an
equivalent in-process API.

Beyond one-shot jobs, the service runs *campaigns*
(:class:`CampaignSpec` → :class:`CampaignResult`): an rq1-style
multi-round, multi-leg experiment expanded server-side into per-window
round jobs that share the queue, job cache, and single-flight dedup —
the ``repro campaign`` command submits one over the socket and renders
the returned detection matrix.  Corpora can also *stream in*:
``repro submit --watch DIR`` feeds newly appearing ``.ll`` files to a
running service (with backpressure-aware pacing), and
``repro submit --stdin`` reads module paths from stdin as they arrive.

Walkthrough (three shells, or background the first)::

    $ repro serve --port 7777 --jobs 4 &
    $ repro campaign --port 7777 --rounds 5    # rq1 matrix, server-side
    $ repro submit --watch drops/ --port 7777  # stream new .ll files
    $ cp new_module.ll drops/                  # picked up + submitted
    $ repro status --port 7777                 # campaign + job metrics
"""

from repro.service.campaign import (
    CampaignLeg,
    RoundOutcome,
    campaign_legs,
    execute_campaign,
)
from repro.service.client import ServiceClient
from repro.service.exporter import MetricsExporter, render_prometheus
from repro.service.metrics import (
    LATENCY_BUCKETS,
    Histogram,
    ServiceMetrics,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    CampaignResult,
    CampaignSpec,
    JobResult,
    JobSpec,
    ProtocolError,
    campaign_digest,
    campaign_from_wire,
    campaign_result_from_wire,
    campaign_result_to_wire,
    campaign_to_wire,
    decode_line,
    encode_line,
    job_digest,
    result_from_wire,
    result_to_wire,
    spec_from_wire,
    spec_to_wire,
)
from repro.service.server import (
    OptimizationService,
    ServiceBusyError,
    ServiceServer,
)
from repro.service.workers import WorkerCrashError, WorkerPool

__all__ = [
    "CampaignLeg", "RoundOutcome", "campaign_legs", "execute_campaign",
    "ServiceClient",
    "MetricsExporter", "render_prometheus",
    "LATENCY_BUCKETS", "Histogram", "ServiceMetrics",
    "PROTOCOL_VERSION", "CampaignResult", "CampaignSpec",
    "JobResult", "JobSpec", "ProtocolError",
    "campaign_digest", "campaign_from_wire",
    "campaign_result_from_wire", "campaign_result_to_wire",
    "campaign_to_wire",
    "decode_line", "encode_line", "job_digest",
    "result_from_wire", "result_to_wire",
    "spec_from_wire", "spec_to_wire",
    "OptimizationService", "ServiceBusyError", "ServiceServer",
    "WorkerCrashError", "WorkerPool",
]
