"""Constant folding driven by the reference interpreter.

Folding reuses :class:`repro.semantics.eval.Interpreter` lane semantics so
the optimizer can never disagree with the verifier about an instruction's
meaning.  Instructions whose evaluation would be immediate UB (e.g.
division by a zero constant) are deliberately *not* folded.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import EvaluationError, UndefinedBehaviorError
from repro.ir.instructions import Instruction
from repro.ir.types import FloatType, IntType, PointerType, Type, VectorType
from repro.ir.values import (
    Constant,
    ConstantFP,
    ConstantInt,
    ConstantPointerNull,
    ConstantVector,
    PoisonValue,
    UndefValue,
)
from repro.semantics.domain import POISON, Pointer, RuntimeValue
from repro.semantics.eval import Interpreter, _Frame
from repro.semantics.memory import Memory


def runtime_to_constant(value: RuntimeValue,
                        type_: Type) -> Optional[Constant]:
    """Convert an interpreter value back into an IR constant, or None when
    it cannot be represented (e.g. an abstract pointer)."""
    if isinstance(type_, VectorType):
        if not isinstance(value, list):
            return None
        lanes = []
        for lane in value:
            constant = runtime_to_constant(lane, type_.element)
            if constant is None:
                return None
            lanes.append(constant)
        return ConstantVector(type_, lanes)
    if value is POISON:
        return PoisonValue(type_)
    if isinstance(type_, IntType) and isinstance(value, int):
        return ConstantInt(type_, value)
    if isinstance(type_, FloatType) and isinstance(value, float):
        return ConstantFP(type_, value)
    if isinstance(type_, PointerType) and isinstance(value, Pointer):
        if value.base == "null" and value.offset == 0:
            return ConstantPointerNull(type_)
    return None


def _make_scratch_interpreter() -> Interpreter:
    interpreter = Interpreter.__new__(Interpreter)
    interpreter.function = None  # never consulted for single instructions
    interpreter.memory = Memory()
    interpreter.undef_chooser = lambda type_: _zeros(type_)
    interpreter.frame = _Frame()
    return interpreter


def _zeros(type_: Type) -> RuntimeValue:
    from repro.semantics.domain import default_lane
    if isinstance(type_, VectorType):
        return [default_lane(type_)] * type_.count
    return default_lane(type_)


def fold_instruction(inst: Instruction) -> Optional[Constant]:
    """Fold ``inst`` to a constant when every operand is constant.

    Returns None when the instruction is not foldable (non-constant
    operands, side effects, memory access, or folding would hide UB).
    Folding ``undef`` operands picks a concrete value, which is a legal
    refinement for the optimizer to make.
    """
    if inst.is_terminator or inst.has_side_effects:
        return None
    if inst.may_read_memory or inst.opcode in ("load", "store", "phi",
                                               "getelementptr"):
        return None
    if not inst.operands:
        return None
    if not all(isinstance(op, Constant) for op in inst.operands):
        return None
    # An all-undef/poison-free fast path is not worth special-casing;
    # evaluate through the interpreter and convert back.
    interpreter = _make_scratch_interpreter()
    try:
        result = interpreter.eval_instruction(inst)
    except UndefinedBehaviorError:
        return None
    except EvaluationError:
        return None
    return runtime_to_constant(result, inst.type)


def fold_undef_shortcuts(inst: Instruction) -> Optional[Constant]:
    """Poison-propagation shortcut: most instructions with a poison operand
    fold to poison outright (select/freeze/phi excluded)."""
    if inst.opcode in ("select", "freeze", "phi", "call", "store", "load",
                       "insertelement", "shufflevector"):
        return None
    if inst.is_terminator:
        return None
    if any(isinstance(op, PoisonValue) for op in inst.operands):
        if inst.opcode in ("udiv", "sdiv", "urem", "srem"):
            # Poison divisor is UB, do not fold; poison dividend is fine.
            if isinstance(inst.operands[1], PoisonValue):
                return None
        if isinstance(inst.type, VectorType) or inst.type.is_first_class:
            return PoisonValue(inst.type)
    return None


__all__ = ["fold_instruction", "fold_undef_shortcuts",
           "runtime_to_constant"]


# Re-export UndefValue for rules that need to synthesize it.
_ = UndefValue
