"""The "fixed patch" rules — rewrites LLVM later implemented.

Each rule reproduces the InstCombine patch that fixed one of the issues
LPO reported (the "Fixed" rows of Table 3 / Table 5).  They register into
``PATCH_REGISTRY`` and are *disabled* by default: the stock optimizer must
keep missing these patterns for the pipeline to rediscover them.  The
impact experiments (Table 5, Figure 5) enable them selectively.
"""

from __future__ import annotations

from repro.ir.instructions import (
    BinaryOperator,
    Call,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Select,
)
from repro.ir.types import IntType, int_type
from repro.ir.values import ConstantInt, const_int, match_scalar_int
from repro.opt.engine import PATCH_REGISTRY, RewriteContext, rule
from repro.opt.patterns import (
    m_binop,
    m_capture,
    m_cast,
    m_constint,
    m_intrinsic,
    match,
)
from repro.semantics import bitvector as bv


def patch(issue_id: int, *opcodes: str, name: str):
    """Shorthand for registering a patch rule under an issue id."""
    return rule(*opcodes, name=name, category="patch",
                registry=PATCH_REGISTRY, issue_id=issue_id)


@patch(128134, "call", name="patch_128134_umin_shl_dominated")
def umax_clamp_subsumed(inst: Instruction, ctx: RewriteContext):
    """Case study 2 (Figure 4b/4e): ``umax(shl nuw (umax X, 1), 1), 16``
    → the inner clamp to 1 is subsumed by the outer clamp to 16.

    General form implemented: ``umax(shl nuw (umax X, C1), S), C2`` with
    ``C1 << S <= C2`` → ``umax(shl nuw X, S), C2``.
    """
    bindings = match(
        m_intrinsic(
            "umax",
            m_binop("shl",
                    m_intrinsic("umax", m_capture("x"), m_constint("c1"),
                                commutative=True),
                    m_constint("s"), flags=("nuw",)),
            m_constint("c2")),
        inst)
    if bindings is None:
        return None
    c1 = bindings["c1"]
    s = bindings["s"]
    c2 = bindings["c2"]
    assert isinstance(c1, ConstantInt) and isinstance(s, ConstantInt)
    assert isinstance(c2, ConstantInt)
    scalar = inst.type.scalar_type()
    assert isinstance(scalar, IntType)
    width = scalar.bits
    if s.value >= width:
        return None
    shifted = bv.shl(c1.value, s.value, width)
    if shifted is None or shifted > c2.value:
        return None
    new_shl = ctx.binary("shl", bindings["x"],
                         const_int(inst.type, s.value), ("nuw",))
    return ctx.intrinsic("umax", [new_shl, bindings["c2.orig"]])


@patch(133367, "fcmp", name="patch_133367_fcmp_ord_select")
def fcmp_ord_select_collapse(inst: Instruction, ctx: RewriteContext):
    """Case study 3 (Figure 4c/4f): an ordered compare of a NaN-guarded
    select collapses: ``fcmp oeq (select (fcmp ord X, 0), X, 0), C``
    → ``fcmp oeq X, C`` when C is a non-zero, non-NaN constant."""
    assert isinstance(inst, FCmp)
    # Only oeq is unconditionally sound here: for ordered inequalities the
    # NaN→0.0 substitution can change the verdict depending on C's sign.
    if inst.predicate != "oeq":
        return None
    selector = inst.lhs
    if not isinstance(selector, Select):
        return None
    guard = selector.condition
    if not (isinstance(guard, FCmp) and guard.predicate == "ord"):
        return None
    from repro.ir.values import ConstantFP
    # select (fcmp ord X, 0.0), X, 0.0
    x = guard.lhs
    if selector.true_value is not x:
        return None
    fill = selector.false_value
    from repro.opt.patterns import m_fp_zero
    if match(m_fp_zero(), fill) is None:
        return None
    rhs_const = inst.rhs
    scalar_rhs = None
    if isinstance(rhs_const, ConstantFP):
        scalar_rhs = rhs_const
    if scalar_rhs is None or scalar_rhs.is_nan or scalar_rhs.is_zero:
        return None
    return ctx.fcmp(inst.predicate, x, inst.rhs)


@patch(142674, "trunc", name="patch_142674_trunc_lshr_zext")
def trunc_lshr_zext_to_zero(inst: Instruction, ctx: RewriteContext):
    """``trunc (lshr (zext X to iB), C) to iA`` with ``C >= A`` → ``0``:
    the shift discards every bit the zext brought in."""
    assert isinstance(inst, Cast)
    bindings = match(
        m_binop("lshr",
                m_cast("zext", m_capture("x"), capture_as="zx"),
                m_constint("c")),
        inst.value)
    if bindings is None:
        return None
    c = bindings["c"]
    assert isinstance(c, ConstantInt)
    narrow = bindings["x"].type.scalar_type()
    wide = inst.value.type.scalar_type()
    assert isinstance(narrow, IntType) and isinstance(wide, IntType)
    if c.value < narrow.bits or c.value >= wide.bits:
        return None
    return const_int(inst.type, 0)


@patch(142711, "select", name="patch_142711_clamp_select_to_minmax")
def clamp_select_to_minmax(inst: Instruction, ctx: RewriteContext):
    """``select (icmp slt X, 0), 0, (trunc nuw (umin X, C))``
    → ``trunc nuw (umin (smax X, 0), C)`` — the Figure 1 clamp."""
    assert isinstance(inst, Select)
    # condition: icmp slt X, 0
    cond = inst.condition
    if not (isinstance(cond, ICmp) and cond.predicate == "slt"):
        return None
    zero = match_scalar_int(cond.rhs)
    if zero is None or not zero.is_zero:
        return None
    x = cond.lhs
    tval = match_scalar_int(inst.true_value)
    if tval is None or not tval.is_zero:
        return None
    fval = inst.false_value
    if not (isinstance(fval, Cast) and fval.opcode == "trunc"):
        return None
    inner = fval.value
    if not (isinstance(inner, Call) and inner.intrinsic_name == "umin"):
        return None
    if inner.operands[0] is not x:
        return None
    limit = match_scalar_int(inner.operands[1])
    if limit is None or limit.signed_value < 0:
        return None
    zero_wide = const_int(x.type, 0)
    smax = ctx.intrinsic("smax", [x, zero_wide])
    umin = ctx.intrinsic("umin", [smax, inner.operands[1]])
    return ctx.cast("trunc", umin, inst.type, tuple(fval.flags))


@patch(143211, "icmp", name="patch_143211_icmp_umin_zero")
def icmp_umin_eq_zero(inst: Instruction, ctx: RewriteContext):
    """``icmp eq (umin X, Y), 0`` with Y known non-zero constant
    → ``icmp eq X, 0`` ... generalized: ``icmp eq (umin X, C), 0`` with
    C != 0 → ``icmp eq X, 0``."""
    assert isinstance(inst, ICmp)
    if inst.predicate not in ("eq", "ne"):
        return None
    zero = match_scalar_int(inst.rhs)
    if zero is None or not zero.is_zero:
        return None
    lhs = inst.lhs
    if not (isinstance(lhs, Call) and lhs.intrinsic_name == "umin"):
        return None
    constant = match_scalar_int(lhs.operands[1])
    if constant is None or constant.is_zero:
        return None
    return ctx.icmp(inst.predicate, lhs.operands[0], inst.rhs)


@patch(143636, "or", name="patch_143636_merge_loads")
def merge_consecutive_loads(inst: Instruction, ctx: RewriteContext):
    """Case study 1 (Figure 4a/4d): merge two consecutive i16 loads
    combined with zext/shl/or into one i32 load.

    Pattern: ``or disjoint (shl nuw (zext HI), 16), (zext LO)`` where
    LO loads from P and HI loads from P+2 → ``load i32, P``.
    """
    assert isinstance(inst, BinaryOperator)
    if inst.opcode != "or":
        return None
    bindings = match(
        m_binop("or",
                m_binop("shl",
                        m_cast("zext", m_capture("hi_load"),
                               capture_as="hi_zext"),
                        m_constint("shift")),
                m_cast("zext", m_capture("lo_load"), capture_as="lo_zext"),
                commutative=True),
        inst)
    if bindings is None:
        return None
    hi_load = bindings["hi_load"]
    lo_load = bindings["lo_load"]
    shift = bindings["shift"]
    assert isinstance(shift, ConstantInt)
    if not (isinstance(hi_load, Load) and isinstance(lo_load, Load)):
        return None
    narrow = lo_load.type.scalar_type()
    if not isinstance(narrow, IntType) or hi_load.type != lo_load.type:
        return None
    if shift.value != narrow.bits:
        return None
    wide = inst.type.scalar_type()
    if not isinstance(wide, IntType) or wide.bits != narrow.bits * 2:
        return None
    # HI must load exactly narrow-bytes above LO's address.
    delta = narrow.bits // 8
    hi_ptr, lo_ptr = hi_load.pointer, lo_load.pointer
    if isinstance(hi_ptr, GetElementPtr):
        index = match_scalar_int(hi_ptr.index)
        if index is None:
            return None
        if hi_ptr.pointer is not lo_ptr:
            return None
        if index.value * hi_ptr.element_size != delta:
            return None
    else:
        return None
    # Loads must be adjacent with no intervening store (single-block
    # windows have no aliasing stores between them by construction; we
    # verify conservatively that no store exists in the block).
    block = inst.parent
    if block is None or any(i.opcode == "store" for i in block.instructions):
        return None
    return ctx.load(int_type(wide.bits), lo_ptr, align=lo_load.align)


@patch(154238, "add", name="patch_154238_add_sext_icmp_pair")
def add_of_bool_exts(inst: Instruction, ctx: RewriteContext):
    """``add (zext (icmp P)), (zext (icmp Q))`` where P and Q are
    mutually exclusive same-operand compares → ``zext (icmp P-or-Q)``:
    implemented for eq/ne against distinct constants → stays; the fixed
    special case is P == (icmp eq X, C), Q == (icmp eq X, D), C != D,
    which becomes ``zext (icmp ult (xor? ...))`` — we implement the
    2-constant form via or of compares."""
    assert isinstance(inst, BinaryOperator)
    bindings = match(
        m_binop("add",
                m_cast("zext", m_capture("p"), capture_as="zp"),
                m_cast("zext", m_capture("q"), capture_as="zq")),
        inst)
    if bindings is None:
        return None
    p, q = bindings["p"], bindings["q"]
    if not (isinstance(p, ICmp) and isinstance(q, ICmp)):
        return None
    if p.predicate != "eq" or q.predicate != "eq":
        return None
    if p.lhs is not q.lhs:
        return None
    c = match_scalar_int(p.rhs)
    d = match_scalar_int(q.rhs)
    if c is None or d is None or c.value == d.value:
        return None
    disjunction = ctx.binary("or", p, q)
    return ctx.cast("zext", disjunction, inst.type)


@patch(157315, "call", name="patch_157315_abs_of_neg")
def abs_of_neg(inst: Instruction, ctx: RewriteContext):
    """``abs(sub 0, X)`` → ``abs(X)`` (same int-min behaviour)."""
    if not isinstance(inst, Call) or inst.intrinsic_name != "abs":
        return None
    inner = inst.operands[0]
    bindings = match(m_binop("sub", m_constint("z"), m_capture("x")),
                     inner)
    if bindings is None:
        return None
    z = bindings["z"]
    assert isinstance(z, ConstantInt)
    if not z.is_zero:
        return None
    if isinstance(inner, BinaryOperator) and inner.flags:
        return None  # nsw neg would change int-min poison behaviour
    return ctx.intrinsic("abs", [bindings["x"], inst.operands[1]])


@patch(157370, "xor", name="patch_157370_xor_signbit_to_add")
def xor_signbit_to_add(inst: Instruction, ctx: RewriteContext):
    """``xor (add X, C), SIGNBIT`` → ``add X, C ^ SIGNBIT`` — flips the
    constant across the sign boundary instead of a separate xor."""
    assert isinstance(inst, BinaryOperator)
    bindings = match(
        m_binop("xor",
                m_binop("add", m_capture("x"), m_constint("c")),
                m_constint("sign")),
        inst)
    if bindings is None:
        return None
    c, sign = bindings["c"], bindings["sign"]
    assert isinstance(c, ConstantInt) and isinstance(sign, ConstantInt)
    scalar = inst.type.scalar_type()
    assert isinstance(scalar, IntType)
    if sign.value != bv.signed_min(scalar.bits):
        return None
    combined = const_int(inst.type, c.value ^ sign.value)
    return ctx.binary("add", bindings["x"], combined)


@patch(157371, "call", name="patch_157371_umin_of_sub")
def umin_sub_same(inst: Instruction, ctx: RewriteContext):
    """``umin(sub X, Y, "nuw"), X)`` → ``sub nuw X, Y``: a nuw sub never
    exceeds X, so the umin is redundant."""
    if not isinstance(inst, Call) or inst.intrinsic_name != "umin":
        return None
    a, b = inst.operands[0], inst.operands[1]
    for sub, other in ((a, b), (b, a)):
        if (isinstance(sub, BinaryOperator) and sub.opcode == "sub"
                and "nuw" in sub.flags and sub.lhs is other):
            return sub
    return None


@patch(157524, "lshr", name="patch_157524_lshr_exact_of_shl")
def lshr_of_mul_even(inst: Instruction, ctx: RewriteContext):
    """``lshr (mul nuw X, 2C), 1`` → ``mul nuw X, C`` — halving an even
    non-overflowing multiply folds into the constant."""
    assert isinstance(inst, BinaryOperator)
    bindings = match(
        m_binop("lshr",
                m_binop("mul", m_capture("x"), m_constint("c"),
                        flags=("nuw",)),
                m_constint("s")),
        inst)
    if bindings is None:
        return None
    c, s = bindings["c"], bindings["s"]
    assert isinstance(c, ConstantInt) and isinstance(s, ConstantInt)
    if s.value != 1 or c.value % 2 != 0:
        return None
    halved = const_int(inst.type, c.value // 2)
    return ctx.binary("mul", bindings["x"], halved, ("nuw",))


@patch(163108, "and", name="patch_163108_and_lshr_signbit")
def and_one_of_lshr_signbit(inst: Instruction, ctx: RewriteContext):
    """``and (lshr X, W-1), 1`` → ``lshr X, W-1`` — the shift already
    leaves a single bit."""
    assert isinstance(inst, BinaryOperator)
    bindings = match(
        m_binop("and",
                m_binop("lshr", m_capture("x"), m_constint("s")),
                m_constint("m"),
                commutative=True),
        inst)
    if bindings is None:
        return None
    s, m = bindings["s"], bindings["m"]
    assert isinstance(s, ConstantInt) and isinstance(m, ConstantInt)
    scalar = inst.type.scalar_type()
    assert isinstance(scalar, IntType)
    if s.value != scalar.bits - 1 or not m.is_one:
        return None
    lhs = inst.lhs if isinstance(inst.lhs, BinaryOperator) else inst.rhs
    return lhs


@patch(166973, "select", name="patch_166973_select_icmp_sub")
def select_icmp_usub_sat(inst: Instruction, ctx: RewriteContext):
    """``select (icmp ult X, Y), 0, (sub X, Y)`` → ``usub.sat(X, Y)``."""
    assert isinstance(inst, Select)
    cond = inst.condition
    if not (isinstance(cond, ICmp) and cond.predicate == "ult"):
        return None
    zero = match_scalar_int(inst.true_value)
    if zero is None or not zero.is_zero:
        return None
    fval = inst.false_value
    if not (isinstance(fval, BinaryOperator) and fval.opcode == "sub"):
        return None
    if fval.lhs is not cond.lhs or fval.rhs is not cond.rhs:
        return None
    return ctx.intrinsic("usub.sat", [fval.lhs, fval.rhs])
