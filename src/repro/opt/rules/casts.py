"""Rules for cast instructions."""

from __future__ import annotations

from repro.ir.instructions import Cast, Instruction
from repro.ir.types import IntType
from repro.opt.engine import RewriteContext, rule


def _scalar_bits(type_) -> int:
    scalar = type_.scalar_type()
    assert isinstance(scalar, IntType)
    return scalar.bits


@rule("trunc", name="trunc_of_ext")
def trunc_of_ext(inst: Instruction, ctx: RewriteContext):
    """``trunc (zext/sext X)`` collapses to X, a narrower trunc, or a
    narrower ext depending on the three widths involved."""
    assert isinstance(inst, Cast)
    inner = inst.value
    if not (isinstance(inner, Cast) and inner.opcode in ("zext", "sext")):
        return None
    source = inner.value                       # iA
    a = _scalar_bits(source.type)
    c = _scalar_bits(inst.type)                # trunc destination iC
    if c == a:
        return source
    if c < a:
        return ctx.cast("trunc", source, inst.type)
    # c > a: the ext then trunc only drops high bits, re-ext narrower.
    return ctx.cast(inner.opcode, source, inst.type)


@rule("zext", name="zext_of_zext")
def zext_of_zext(inst: Instruction, ctx: RewriteContext):
    """``zext (zext X)`` → ``zext X`` (single step)."""
    assert isinstance(inst, Cast)
    inner = inst.value
    if isinstance(inner, Cast) and inner.opcode == "zext":
        return ctx.cast("zext", inner.value, inst.type)
    return None


@rule("sext", name="sext_of_sext")
def sext_of_sext(inst: Instruction, ctx: RewriteContext):
    """``sext (sext X)`` → ``sext X``."""
    assert isinstance(inst, Cast)
    inner = inst.value
    if isinstance(inner, Cast) and inner.opcode == "sext":
        return ctx.cast("sext", inner.value, inst.type)
    return None


@rule("sext", name="sext_of_zext")
def sext_of_zext(inst: Instruction, ctx: RewriteContext):
    """``sext (zext X)`` → ``zext X`` — the middle value is known
    non-negative because zext writes zero high bits."""
    assert isinstance(inst, Cast)
    inner = inst.value
    if isinstance(inner, Cast) and inner.opcode == "zext":
        return ctx.cast("zext", inner.value, inst.type)
    return None


@rule("zext", name="zext_of_icmp_stays", category="canonicalize")
def zext_nneg_of_icmp(inst: Instruction, ctx: RewriteContext):
    """No-op placeholder documenting that ``zext i1`` is canonical; kept
    so the rule table mirrors LLVM's cast-combine structure."""
    return None


@rule("bitcast", name="bitcast_of_bitcast")
def bitcast_of_bitcast(inst: Instruction, ctx: RewriteContext):
    """``bitcast (bitcast X)`` → single bitcast or X."""
    assert isinstance(inst, Cast)
    inner = inst.value
    if isinstance(inner, Cast) and inner.opcode == "bitcast":
        if inner.value.type == inst.type:
            return inner.value
        return ctx.cast("bitcast", inner.value, inst.type)
    return None


@rule("freeze", name="freeze_of_freeze")
def freeze_of_freeze(inst: Instruction, ctx: RewriteContext):
    """``freeze (freeze X)`` → ``freeze X``."""
    from repro.ir.instructions import Freeze
    assert isinstance(inst, Freeze)
    if isinstance(inst.value, Freeze):
        return inst.value
    return None


@rule("freeze", name="freeze_of_nonpoison")
def freeze_of_nonpoison(inst: Instruction, ctx: RewriteContext):
    """``freeze X`` → ``X`` when X is known not to be poison."""
    from repro.ir.instructions import Freeze
    from repro.opt.analysis import may_be_poison
    assert isinstance(inst, Freeze)
    if not may_be_poison(inst.value):
        return inst.value
    return None
