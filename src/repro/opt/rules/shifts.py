"""Rules for shl/lshr/ashr."""

from __future__ import annotations

from typing import Optional

from repro.ir.instructions import BinaryOperator, Instruction
from repro.ir.types import IntType
from repro.ir.values import ConstantInt, const_int, match_scalar_int
from repro.opt.engine import RewriteContext, rule
from repro.opt.patterns import m_binop, m_capture, m_constint, match


def _rhs_const(inst: Instruction) -> Optional[ConstantInt]:
    return match_scalar_int(inst.operands[1])


def _width(inst: Instruction) -> int:
    scalar = inst.type.scalar_type()
    assert isinstance(scalar, IntType)
    return scalar.bits


@rule("shl", "lshr", "ashr", name="shift_zero_amount")
def shift_zero_amount(inst: Instruction, ctx: RewriteContext):
    """``shift X, 0`` → ``X``."""
    constant = _rhs_const(inst)
    if constant is not None and constant.is_zero:
        return inst.operands[0]
    return None


@rule("shl", "lshr", name="shift_of_zero")
def shift_of_zero(inst: Instruction, ctx: RewriteContext):
    """``shl/lshr 0, X`` → ``0`` — refines potential poison to zero."""
    assert isinstance(inst, BinaryOperator)
    lhs = match_scalar_int(inst.lhs)
    if lhs is not None and lhs.is_zero:
        return const_int(inst.type, 0)
    return None


@rule("shl", name="shl_const_chain")
def shl_const_chain(inst: Instruction, ctx: RewriteContext):
    """``shl (shl X, C1), C2`` → ``shl X, C1+C2`` (or 0 past the width)."""
    bindings = match(
        m_binop("shl",
                m_binop("shl", m_capture("x"), m_constint("c1")),
                m_constint("c2")),
        inst)
    if bindings is None:
        return None
    c1, c2 = bindings["c1"], bindings["c2"]
    assert isinstance(c1, ConstantInt) and isinstance(c2, ConstantInt)
    width = _width(inst)
    if c1.value >= width or c2.value >= width:
        return None  # already poison; leave for fold
    total = c1.value + c2.value
    if total >= width:
        return const_int(inst.type, 0)
    return ctx.binary("shl", bindings["x"], const_int(inst.type, total))


@rule("lshr", name="lshr_const_chain")
def lshr_const_chain(inst: Instruction, ctx: RewriteContext):
    """``lshr (lshr X, C1), C2`` → ``lshr X, C1+C2`` (or 0 past width)."""
    bindings = match(
        m_binop("lshr",
                m_binop("lshr", m_capture("x"), m_constint("c1")),
                m_constint("c2")),
        inst)
    if bindings is None:
        return None
    c1, c2 = bindings["c1"], bindings["c2"]
    assert isinstance(c1, ConstantInt) and isinstance(c2, ConstantInt)
    width = _width(inst)
    if c1.value >= width or c2.value >= width:
        return None
    total = c1.value + c2.value
    if total >= width:
        return const_int(inst.type, 0)
    return ctx.binary("lshr", bindings["x"], const_int(inst.type, total))


@rule("ashr", name="ashr_const_chain")
def ashr_const_chain(inst: Instruction, ctx: RewriteContext):
    """``ashr (ashr X, C1), C2`` → ``ashr X, min(C1+C2, width-1)``."""
    bindings = match(
        m_binop("ashr",
                m_binop("ashr", m_capture("x"), m_constint("c1")),
                m_constint("c2")),
        inst)
    if bindings is None:
        return None
    c1, c2 = bindings["c1"], bindings["c2"]
    assert isinstance(c1, ConstantInt) and isinstance(c2, ConstantInt)
    width = _width(inst)
    if c1.value >= width or c2.value >= width:
        return None
    total = min(c1.value + c2.value, width - 1)
    return ctx.binary("ashr", bindings["x"], const_int(inst.type, total))


@rule("lshr", name="lshr_of_shl_same_amount")
def lshr_of_shl_same_amount(inst: Instruction, ctx: RewriteContext):
    """``lshr (shl X, C), C`` → ``and X, (-1 >> C)``."""
    bindings = match(
        m_binop("lshr",
                m_binop("shl", m_capture("x"), m_constint("c1")),
                m_constint("c2")),
        inst)
    if bindings is None:
        return None
    c1, c2 = bindings["c1"], bindings["c2"]
    assert isinstance(c1, ConstantInt) and isinstance(c2, ConstantInt)
    if c1.value != c2.value:
        return None
    width = _width(inst)
    if c1.value >= width:
        return None
    mask = (1 << (width - c1.value)) - 1
    return ctx.binary("and", bindings["x"], const_int(inst.type, mask))


@rule("shl", name="shl_of_lshr_same_amount")
def shl_of_lshr_same_amount(inst: Instruction, ctx: RewriteContext):
    """``shl (lshr X, C), C`` → ``and X, (-1 << C)``."""
    bindings = match(
        m_binop("shl",
                m_binop("lshr", m_capture("x"), m_constint("c1")),
                m_constint("c2")),
        inst)
    if bindings is None:
        return None
    c1, c2 = bindings["c1"], bindings["c2"]
    assert isinstance(c1, ConstantInt) and isinstance(c2, ConstantInt)
    if c1.value != c2.value:
        return None
    width = _width(inst)
    if c1.value >= width:
        return None
    mask = ((1 << width) - 1) & ~((1 << c1.value) - 1)
    return ctx.binary("and", bindings["x"], const_int(inst.type, mask))
