"""Rules for floating-point comparisons and FP arithmetic identities.

Deliberately conservative: only transformations that are sound without
fast-math flags are implemented, mirroring InstCombine's behaviour.  The
FP simplifications the paper's benchmark issues describe (e.g. removing a
NaN-guarding select before an ordered compare — Figure 4c) are *not*
implemented here; they are exactly the "missed" optimizations.
"""

from __future__ import annotations

from repro.ir.instructions import BinaryOperator, FCmp, Instruction
from repro.ir.values import const_int
from repro.opt.engine import RewriteContext, rule
from repro.opt.patterns import m_constfp, match


@rule("fcmp", name="fcmp_trivial_predicates")
def fcmp_trivial_predicates(inst: Instruction, ctx: RewriteContext):
    """``fcmp false/true X, Y`` folds to a constant (non-poison args)."""
    assert isinstance(inst, FCmp)
    if inst.predicate == "false":
        return const_int(inst.type, 0)
    if inst.predicate == "true":
        return const_int(inst.type, 1)
    return None


@rule("fcmp", name="fcmp_self_ord")
def fcmp_self_ord(inst: Instruction, ctx: RewriteContext):
    """``fcmp oeq X, X`` → ``fcmp ord X, 0.0`` is *not* done; but
    ``fcmp ueq X, X`` → true-like folds for predicates where only the
    unordered case matters: ``ueq/uge/ule X, X`` → true,
    ``one/ogt/olt X, X`` → false."""
    assert isinstance(inst, FCmp)
    if inst.lhs is not inst.rhs:
        return None
    if inst.predicate in ("ueq", "uge", "ule"):
        return const_int(inst.type, 1)
    if inst.predicate in ("one", "ogt", "olt"):
        return const_int(inst.type, 0)
    return None


@rule("fcmp", name="fcmp_const_lhs_swap", category="canonicalize")
def fcmp_const_lhs_swap(inst: Instruction, ctx: RewriteContext):
    """Move a constant LHS to the RHS, swapping the predicate."""
    assert isinstance(inst, FCmp)
    from repro.ir.values import Constant
    if not (isinstance(inst.lhs, Constant)
            and not isinstance(inst.rhs, Constant)):
        return None
    swap = {"oeq": "oeq", "one": "one", "ueq": "ueq", "une": "une",
            "ord": "ord", "uno": "uno", "false": "false", "true": "true",
            "ogt": "olt", "oge": "ole", "olt": "ogt", "ole": "oge",
            "ugt": "ult", "uge": "ule", "ult": "ugt", "ule": "uge"}
    inst.operands[0], inst.operands[1] = inst.rhs, inst.lhs
    inst.predicate = swap[inst.predicate]
    return inst


@rule("fadd", name="fadd_negzero")
def fadd_negzero(inst: Instruction, ctx: RewriteContext):
    """``fadd X, -0.0`` → ``X`` (sound without nsz, unlike ``+0.0``)."""
    assert isinstance(inst, BinaryOperator)
    bindings = match(m_constfp("c"), inst.rhs)
    if bindings is None:
        return None
    constant = bindings["c"]
    import math
    if constant.value == 0.0 and math.copysign(1.0, constant.value) < 0:
        return inst.lhs
    return None


@rule("fmul", name="fmul_one")
def fmul_one(inst: Instruction, ctx: RewriteContext):
    """``fmul X, 1.0`` → ``X`` (exact in IEEE arithmetic)."""
    assert isinstance(inst, BinaryOperator)
    bindings = match(m_constfp("c"), inst.rhs)
    if bindings is None:
        return None
    if bindings["c"].value == 1.0:
        return inst.lhs
    return None


@rule("fdiv", name="fdiv_one")
def fdiv_one(inst: Instruction, ctx: RewriteContext):
    """``fdiv X, 1.0`` → ``X``."""
    assert isinstance(inst, BinaryOperator)
    bindings = match(m_constfp("c"), inst.rhs)
    if bindings is None:
        return None
    if bindings["c"].value == 1.0:
        return inst.lhs
    return None


@rule("fsub", name="fsub_zero")
def fsub_zero(inst: Instruction, ctx: RewriteContext):
    """``fsub X, 0.0`` → ``X`` (+0.0 is the additive identity for fsub)."""
    assert isinstance(inst, BinaryOperator)
    bindings = match(m_constfp("c"), inst.rhs)
    if bindings is None:
        return None
    import math
    constant = bindings["c"]
    if constant.value == 0.0 and math.copysign(1.0, constant.value) > 0:
        return inst.lhs
    return None
