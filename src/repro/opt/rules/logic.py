"""Rules for and/or/xor."""

from __future__ import annotations

from typing import Optional

from repro.ir.instructions import BinaryOperator, Instruction
from repro.ir.values import ConstantInt, const_int, match_scalar_int
from repro.opt.engine import RewriteContext, rule
from repro.opt.patterns import (
    m_binop,
    m_capture,
    m_constint,
    m_not,
    m_same,
    match,
)


def _rhs_const(inst: Instruction) -> Optional[ConstantInt]:
    return match_scalar_int(inst.operands[1])


@rule("and", name="and_identities")
def and_identities(inst: Instruction, ctx: RewriteContext):
    """``and X, -1`` → X;  ``and X, 0`` → 0;  ``and X, X`` → X."""
    assert isinstance(inst, BinaryOperator)
    if inst.lhs is inst.rhs:
        return inst.lhs
    constant = _rhs_const(inst)
    if constant is not None:
        if constant.is_all_ones:
            return inst.lhs
        if constant.is_zero:
            return const_int(inst.type, 0)
    return None


@rule("or", name="or_identities")
def or_identities(inst: Instruction, ctx: RewriteContext):
    """``or X, 0`` → X;  ``or X, -1`` → -1;  ``or X, X`` → X."""
    assert isinstance(inst, BinaryOperator)
    if inst.lhs is inst.rhs:
        return inst.lhs
    constant = _rhs_const(inst)
    if constant is not None:
        if constant.is_zero:
            return inst.lhs
        if constant.is_all_ones:
            return const_int(inst.type, -1)
    return None


@rule("xor", name="xor_identities")
def xor_identities(inst: Instruction, ctx: RewriteContext):
    """``xor X, 0`` → X;  ``xor X, X`` → 0."""
    assert isinstance(inst, BinaryOperator)
    if inst.lhs is inst.rhs:
        return const_int(inst.type, 0)
    constant = _rhs_const(inst)
    if constant is not None and constant.is_zero:
        return inst.lhs
    return None


@rule("xor", name="not_of_not")
def not_of_not(inst: Instruction, ctx: RewriteContext):
    """``xor (xor X, -1), -1`` → ``X``."""
    bindings = match(m_not(m_not(m_capture("x"))), inst)
    if bindings is None:
        return None
    return bindings["x"]


@rule("and", "or", "xor", name="logic_const_chain")
def logic_const_chain(inst: Instruction, ctx: RewriteContext):
    """``op (op X, C1), C2`` → ``op X, C1 op C2`` for and/or/xor."""
    assert isinstance(inst, BinaryOperator)
    opcode = inst.opcode
    bindings = match(
        m_binop(opcode,
                m_binop(opcode, m_capture("x"), m_constint("c1")),
                m_constint("c2")),
        inst)
    if bindings is None:
        return None
    c1, c2 = bindings["c1"], bindings["c2"]
    assert isinstance(c1, ConstantInt) and isinstance(c2, ConstantInt)
    if opcode == "and":
        combined = c1.value & c2.value
    elif opcode == "or":
        combined = c1.value | c2.value
    else:
        combined = c1.value ^ c2.value
    return ctx.binary(opcode, bindings["x"],
                      const_int(inst.type, combined))


@rule("and", name="and_with_not_self")
def and_with_not_self(inst: Instruction, ctx: RewriteContext):
    """``and X, (xor X, -1)`` → ``0``."""
    bindings = match(
        m_binop("and", m_capture("x"), m_not(m_same("x")),
                commutative=True),
        inst)
    if bindings is None:
        return None
    return const_int(inst.type, 0)


@rule("or", name="or_with_not_self")
def or_with_not_self(inst: Instruction, ctx: RewriteContext):
    """``or X, (xor X, -1)`` → ``-1``."""
    bindings = match(
        m_binop("or", m_capture("x"), m_not(m_same("x")),
                commutative=True),
        inst)
    if bindings is None:
        return None
    return const_int(inst.type, -1)


@rule("and", name="and_absorb_or")
def and_absorb_or(inst: Instruction, ctx: RewriteContext):
    """``and X, (or X, Y)`` → ``X``."""
    bindings = match(
        m_binop("and",
                m_capture("x"),
                m_binop("or", m_same("x"), m_capture("y"),
                        commutative=True),
                commutative=True),
        inst)
    if bindings is None:
        return None
    return bindings["x"]


@rule("or", name="or_absorb_and")
def or_absorb_and(inst: Instruction, ctx: RewriteContext):
    """``or X, (and X, Y)`` → ``X``."""
    bindings = match(
        m_binop("or",
                m_capture("x"),
                m_binop("and", m_same("x"), m_capture("y"),
                        commutative=True),
                commutative=True),
        inst)
    if bindings is None:
        return None
    return bindings["x"]


@rule("or", name="or_disjoint_checkable", category="canonicalize")
def or_same_operands_and_or(inst: Instruction, ctx: RewriteContext):
    """``or (and X, Y), (and X, Z)`` with constant Y, Z → ``and X, Y|Z``
    only when Y and Z are disjoint masks covering the same base value."""
    bindings = match(
        m_binop("or",
                m_binop("and", m_capture("x"), m_constint("c1")),
                m_binop("and", m_same("x"), m_constint("c2"))),
        inst)
    if bindings is None:
        return None
    c1, c2 = bindings["c1"], bindings["c2"]
    assert isinstance(c1, ConstantInt) and isinstance(c2, ConstantInt)
    return ctx.binary("and", bindings["x"],
                      const_int(inst.type, c1.value | c2.value))
