"""Rules for add/sub/mul/div/rem."""

from __future__ import annotations

from typing import Optional

from repro.ir.instructions import BinaryOperator, Instruction
from repro.ir.values import Constant, ConstantInt, const_int, match_scalar_int
from repro.opt.engine import RewriteContext, rule
from repro.opt.patterns import (
    m_binop,
    m_capture,
    m_constint,
    m_neg,
    m_same,
    match,
)
from repro.semantics import bitvector as bv


def _rhs_const(inst: Instruction) -> Optional[ConstantInt]:
    return match_scalar_int(inst.operands[1])


@rule("add", "mul", "and", "or", "xor", name="canonicalize_const_rhs",
      category="canonicalize")
def canonicalize_const_rhs(inst: Instruction,
                           ctx: RewriteContext) -> Optional[Instruction]:
    """Move a constant operand of a commutative op to the right-hand side."""
    assert isinstance(inst, BinaryOperator)
    if isinstance(inst.lhs, Constant) and not isinstance(inst.rhs, Constant):
        inst.operands[0], inst.operands[1] = inst.rhs, inst.lhs
        return inst
    return None


@rule("add", name="add_zero")
def add_zero(inst: Instruction, ctx: RewriteContext):
    """``add X, 0`` → ``X``."""
    constant = _rhs_const(inst)
    if constant is not None and constant.is_zero:
        return inst.operands[0]
    return None


@rule("add", name="add_self_to_shl")
def add_self_to_shl(inst: Instruction, ctx: RewriteContext):
    """``add X, X`` → ``shl X, 1`` (LLVM's canonical doubling)."""
    assert isinstance(inst, BinaryOperator)
    if inst.lhs is inst.rhs and inst.type.scalar_type().is_integer:
        flags = tuple(f for f in inst.flags if f in ("nuw", "nsw"))
        return ctx.binary("shl", inst.lhs, const_int(inst.type, 1), flags)
    return None


@rule("add", name="add_const_chain")
def add_const_chain(inst: Instruction, ctx: RewriteContext):
    """``add (add X, C1), C2`` → ``add X, C1+C2`` (flags dropped)."""
    bindings = match(
        m_binop("add",
                m_binop("add", m_capture("x"), m_constint("c1")),
                m_constint("c2")),
        inst)
    if bindings is None:
        return None
    c1, c2 = bindings["c1"], bindings["c2"]
    assert isinstance(c1, ConstantInt) and isinstance(c2, ConstantInt)
    total = const_int(inst.type, c1.value + c2.value)
    return ctx.binary("add", bindings["x"], total)


@rule("add", name="add_neg_to_sub")
def add_neg_to_sub(inst: Instruction, ctx: RewriteContext):
    """``add X, (sub 0, Y)`` → ``sub X, Y``."""
    bindings = match(
        m_binop("add", m_capture("x"), m_neg(m_capture("y")),
                commutative=True),
        inst)
    if bindings is None or bindings["x"] is inst:
        return None
    return ctx.binary("sub", bindings["x"], bindings["y"])


@rule("sub", name="sub_zero")
def sub_zero(inst: Instruction, ctx: RewriteContext):
    """``sub X, 0`` → ``X``."""
    constant = _rhs_const(inst)
    if constant is not None and constant.is_zero:
        return inst.operands[0]
    return None


@rule("sub", name="sub_self")
def sub_self(inst: Instruction, ctx: RewriteContext):
    """``sub X, X`` → ``0``."""
    assert isinstance(inst, BinaryOperator)
    if inst.lhs is inst.rhs:
        return const_int(inst.type, 0)
    return None


@rule("sub", name="sub_const_to_add", category="canonicalize")
def sub_const_to_add(inst: Instruction, ctx: RewriteContext):
    """``sub X, C`` → ``add X, -C`` (LLVM's canonical form)."""
    assert isinstance(inst, BinaryOperator)
    if isinstance(inst.lhs, Constant):
        return None
    constant = _rhs_const(inst)
    if constant is None or constant.is_zero:
        return None
    return ctx.binary("add", inst.lhs, const_int(inst.type, -constant.value))


@rule("sub", name="neg_of_neg")
def neg_of_neg(inst: Instruction, ctx: RewriteContext):
    """``sub 0, (sub 0, X)`` → ``X`` (wrapping negation is an involution)."""
    bindings = match(m_neg(m_neg(m_capture("x"))), inst)
    if bindings is None:
        return None
    return bindings["x"]


@rule("sub", name="sub_of_add_cancel")
def sub_of_add_cancel(inst: Instruction, ctx: RewriteContext):
    """``sub (add X, Y), X`` → ``Y`` (and the commuted form)."""
    bindings = match(
        m_binop("sub",
                m_binop("add", m_capture("x"), m_capture("y"),
                        commutative=True),
                m_same("x")),
        inst)
    if bindings is not None:
        return bindings["y"]
    return None


@rule("mul", name="mul_one")
def mul_one(inst: Instruction, ctx: RewriteContext):
    """``mul X, 1`` → ``X``."""
    constant = _rhs_const(inst)
    if constant is not None and constant.is_one:
        return inst.operands[0]
    return None


@rule("mul", name="mul_zero")
def mul_zero(inst: Instruction, ctx: RewriteContext):
    """``mul X, 0`` → ``0``."""
    constant = _rhs_const(inst)
    if constant is not None and constant.is_zero:
        return const_int(inst.type, 0)
    return None


@rule("mul", name="mul_pow2_to_shl", category="canonicalize")
def mul_pow2_to_shl(inst: Instruction, ctx: RewriteContext):
    """``mul X, 2^k`` → ``shl X, k``, preserving nuw/nsw."""
    assert isinstance(inst, BinaryOperator)
    constant = _rhs_const(inst)
    if constant is None:
        return None
    log2 = bv.decompose_power_of_two(constant.value)
    if log2 is None or log2 == 0:
        return None
    flags = tuple(f for f in inst.flags if f in ("nuw", "nsw"))
    return ctx.binary("shl", inst.lhs, const_int(inst.type, log2), flags)


@rule("mul", name="mul_allones_to_neg", category="canonicalize")
def mul_allones_to_neg(inst: Instruction, ctx: RewriteContext):
    """``mul X, -1`` → ``sub 0, X``."""
    assert isinstance(inst, BinaryOperator)
    constant = _rhs_const(inst)
    if constant is not None and constant.is_all_ones:
        return ctx.neg(inst.lhs)
    return None


@rule("udiv", "sdiv", name="div_one")
def div_one(inst: Instruction, ctx: RewriteContext):
    """``udiv/sdiv X, 1`` → ``X``."""
    constant = _rhs_const(inst)
    if constant is not None and constant.is_one:
        return inst.operands[0]
    return None


@rule("udiv", name="udiv_pow2_to_lshr", category="canonicalize")
def udiv_pow2_to_lshr(inst: Instruction, ctx: RewriteContext):
    """``udiv X, 2^k`` → ``lshr X, k`` (preserving exact)."""
    assert isinstance(inst, BinaryOperator)
    constant = _rhs_const(inst)
    if constant is None:
        return None
    log2 = bv.decompose_power_of_two(constant.value)
    if log2 is None:
        return None
    flags = ("exact",) if "exact" in inst.flags else ()
    return ctx.binary("lshr", inst.lhs, const_int(inst.type, log2), flags)


@rule("urem", name="urem_pow2_to_and", category="canonicalize")
def urem_pow2_to_and(inst: Instruction, ctx: RewriteContext):
    """``urem X, 2^k`` → ``and X, 2^k - 1``."""
    assert isinstance(inst, BinaryOperator)
    constant = _rhs_const(inst)
    if constant is None:
        return None
    log2 = bv.decompose_power_of_two(constant.value)
    if log2 is None:
        return None
    return ctx.binary("and", inst.lhs,
                      const_int(inst.type, constant.value - 1))


@rule("urem", "srem", name="rem_one")
def rem_one(inst: Instruction, ctx: RewriteContext):
    """``urem/srem X, 1`` → ``0``."""
    constant = _rhs_const(inst)
    if constant is not None and constant.is_one:
        return const_int(inst.type, 0)
    return None
