"""Rules for select, including min/max canonical formation (SPF)."""

from __future__ import annotations


from repro.ir.instructions import ICmp, Instruction, Select
from repro.ir.types import IntType, VectorType
from repro.ir.values import Constant, match_scalar_int
from repro.opt.analysis import may_be_poison
from repro.opt.engine import RewriteContext, rule
from repro.opt.patterns import m_capture, m_not, match

#: icmp predicate → (intrinsic when arms are (lhs, rhs),
#:                   intrinsic when arms are (rhs, lhs))
_SPF_TABLE = {
    "slt": ("smin", "smax"),
    "sle": ("smin", "smax"),
    "sgt": ("smax", "smin"),
    "sge": ("smax", "smin"),
    "ult": ("umin", "umax"),
    "ule": ("umin", "umax"),
    "ugt": ("umax", "umin"),
    "uge": ("umax", "umin"),
}


@rule("select", name="select_same_arms")
def select_same_arms(inst: Instruction, ctx: RewriteContext):
    """``select C, X, X`` → ``X``."""
    assert isinstance(inst, Select)
    if inst.true_value is inst.false_value:
        return inst.true_value
    return None


@rule("select", name="select_not_cond", category="canonicalize")
def select_not_cond(inst: Instruction, ctx: RewriteContext):
    """``select (xor C, true), A, B`` → ``select C, B, A``."""
    assert isinstance(inst, Select)
    if isinstance(inst.condition.type, VectorType):
        return None
    bindings = match(m_not(m_capture("c")), inst.condition)
    if bindings is None:
        return None
    return ctx.select(bindings["c"], inst.false_value, inst.true_value)


@rule("select", name="select_bool_arms", category="canonicalize")
def select_bool_arms(inst: Instruction, ctx: RewriteContext):
    """i1 selects with a constant arm become logic:
    ``select C, true, B`` → ``or C, B``; ``select C, A, false`` → ``and``.
    """
    assert isinstance(inst, Select)
    scalar = inst.type.scalar_type()
    if not (isinstance(scalar, IntType) and scalar.bits == 1):
        return None
    if isinstance(inst.type, VectorType):
        return None
    tval = match_scalar_int(inst.true_value)
    fval = match_scalar_int(inst.false_value)

    def safe(value):
        # `or`/`and` observe the arm unconditionally, while `select` hides
        # it behind the condition, so a possibly-poison arm needs a freeze.
        if may_be_poison(value):
            return ctx.freeze(value)
        return value

    if tval is not None and tval.is_one:
        return ctx.binary("or", inst.condition, safe(inst.false_value))
    if fval is not None and fval.is_zero:
        return ctx.binary("and", inst.condition, safe(inst.true_value))
    if tval is not None and tval.is_zero:
        not_cond = ctx.not_(inst.condition)
        return ctx.binary("and", not_cond, safe(inst.false_value))
    if fval is not None and fval.is_one:
        not_cond = ctx.not_(inst.condition)
        return ctx.binary("or", not_cond, safe(inst.true_value))
    return None


@rule("select", name="select_spf_to_minmax", category="canonicalize")
def select_spf_to_minmax(inst: Instruction, ctx: RewriteContext):
    """Canonical min/max formation:
    ``select (icmp slt A, B), A, B`` → ``smin(A, B)`` and friends."""
    assert isinstance(inst, Select)
    condition = inst.condition
    if not isinstance(condition, ICmp):
        return None
    predicate = condition.predicate
    if predicate not in _SPF_TABLE:
        return None
    scalar = inst.type.scalar_type()
    if not isinstance(scalar, IntType):
        return None
    a, b = condition.lhs, condition.rhs
    tval, fval = inst.true_value, inst.false_value
    direct, inverse = _SPF_TABLE[predicate]
    if _same_value(tval, a) and _same_value(fval, b):
        return ctx.intrinsic(direct, [tval, fval])
    if _same_value(tval, b) and _same_value(fval, a):
        return ctx.intrinsic(inverse, [tval, fval])
    return None


def _same_value(x, y) -> bool:
    """Identity or equal-constant comparison."""
    if x is y:
        return True
    if isinstance(x, Constant) and isinstance(y, Constant):
        return x == y
    return False


@rule("select", name="select_eq_replace")
def select_eq_replace(inst: Instruction, ctx: RewriteContext):
    """``select (icmp eq X, C), C, X`` → ``X`` and
    ``select (icmp ne X, C), X, C`` → ``X``."""
    assert isinstance(inst, Select)
    condition = inst.condition
    if not isinstance(condition, ICmp):
        return None
    if condition.predicate == "eq":
        if (_same_value(inst.true_value, condition.rhs)
                and _same_value(inst.false_value, condition.lhs)):
            return inst.false_value
    if condition.predicate == "ne":
        if (_same_value(inst.true_value, condition.lhs)
                and _same_value(inst.false_value, condition.rhs)):
            return inst.true_value
    return None


@rule("select", name="select_of_select_same_cond")
def select_of_select_same_cond(inst: Instruction, ctx: RewriteContext):
    """``select C, (select C, A, B), D`` → ``select C, A, D`` (and the
    symmetric false-arm form)."""
    assert isinstance(inst, Select)
    condition = inst.condition
    tval, fval = inst.true_value, inst.false_value
    if isinstance(tval, Select) and tval.condition is condition:
        return ctx.select(condition, tval.true_value, fval)
    if isinstance(fval, Select) and fval.condition is condition:
        return ctx.select(condition, tval, fval.false_value)
    return None
