"""Rules for the min/max and bit-manipulation intrinsic families."""

from __future__ import annotations

from typing import Optional

from repro.ir.instructions import Call, Instruction
from repro.ir.types import IntType
from repro.ir.values import Constant, const_int, match_scalar_int
from repro.opt.engine import RewriteContext, rule
from repro.semantics import bitvector as bv

_MINMAX = ("umin", "umax", "smin", "smax")


def _minmax_args(inst: Instruction) -> Optional[tuple]:
    if not isinstance(inst, Call):
        return None
    base = inst.intrinsic_name
    if base not in _MINMAX:
        return None
    return base, inst.operands[0], inst.operands[1]


def _width(inst: Instruction) -> int:
    scalar = inst.type.scalar_type()
    assert isinstance(scalar, IntType)
    return scalar.bits


@rule("call", name="minmax_const_rhs", category="canonicalize")
def minmax_const_rhs(inst: Instruction, ctx: RewriteContext):
    """Move a constant min/max operand to the right-hand side."""
    unpacked = _minmax_args(inst)
    if unpacked is None:
        return None
    _, lhs, rhs = unpacked
    if isinstance(lhs, Constant) and not isinstance(rhs, Constant):
        inst.operands[0], inst.operands[1] = rhs, lhs
        return inst
    return None


@rule("call", name="minmax_same_operand")
def minmax_same_operand(inst: Instruction, ctx: RewriteContext):
    """``min/max(X, X)`` → ``X``."""
    unpacked = _minmax_args(inst)
    if unpacked is None:
        return None
    _, lhs, rhs = unpacked
    if lhs is rhs:
        return lhs
    return None


@rule("call", name="minmax_absorbing_const")
def minmax_absorbing_const(inst: Instruction, ctx: RewriteContext):
    """min/max against the domain extremum folds:
    ``umin(X, 0)`` → 0, ``umin(X, UMAX)`` → X, ``umax(X, 0)`` → X, ...
    """
    unpacked = _minmax_args(inst)
    if unpacked is None:
        return None
    base, lhs, rhs = unpacked
    constant = match_scalar_int(rhs)
    if constant is None:
        return None
    width = _width(inst)
    value = constant.value
    if base == "umin":
        if value == 0:
            return const_int(inst.type, 0)
        if value == bv.mask(width):
            return lhs
    elif base == "umax":
        if value == 0:
            return lhs
        if value == bv.mask(width):
            return const_int(inst.type, -1)
    elif base == "smin":
        if value == bv.signed_max(width):
            return lhs
        if value == bv.signed_min(width):
            return const_int(inst.type, bv.signed_min(width))
    elif base == "smax":
        if value == bv.signed_min(width):
            return lhs
        if value == bv.signed_max(width):
            return const_int(inst.type, bv.signed_max(width))
    return None


@rule("call", name="minmax_nested_same_direction")
def minmax_nested_same_direction(inst: Instruction, ctx: RewriteContext):
    """``op(op(X, C1), C2)`` → ``op(X, combine(C1, C2))`` for the same
    min/max direction; also ``op(op(X, Y), X)`` → ``op(X, Y)``."""
    unpacked = _minmax_args(inst)
    if unpacked is None:
        return None
    base, lhs, rhs = unpacked
    inner = _minmax_args(lhs) if isinstance(lhs, Call) else None
    if inner is None or inner[0] != base:
        return None
    _, inner_lhs, inner_rhs = inner
    # op(op(X, Y), X) or op(op(X, Y), Y) collapses to the inner op.
    if rhs is inner_lhs or rhs is inner_rhs:
        return lhs
    c_outer = match_scalar_int(rhs)
    c_inner = match_scalar_int(inner_rhs)
    if c_outer is None or c_inner is None:
        return None
    width = _width(inst)
    combine = {"umin": bv.umin, "umax": bv.umax,
               "smin": bv.smin, "smax": bv.smax}[base]
    combined = combine(c_inner.value, c_outer.value, width)
    return ctx.intrinsic(base, [inner_lhs, const_int(inst.type, combined)])


@rule("call", name="abs_of_abs")
def abs_of_abs(inst: Instruction, ctx: RewriteContext):
    """``abs(abs(X))`` → ``abs(X)`` (matching poison flags)."""
    if not isinstance(inst, Call) or inst.intrinsic_name != "abs":
        return None
    inner = inst.operands[0]
    if isinstance(inner, Call) and inner.intrinsic_name == "abs":
        return inner
    return None


@rule("call", name="sat_identity")
def sat_identity(inst: Instruction, ctx: RewriteContext):
    """``uadd.sat/usub.sat/sadd.sat/ssub.sat (X, 0)`` → ``X``."""
    if not isinstance(inst, Call):
        return None
    if inst.intrinsic_name not in ("uadd.sat", "usub.sat",
                                   "sadd.sat", "ssub.sat"):
        return None
    constant = match_scalar_int(inst.operands[1])
    if constant is not None and constant.is_zero:
        return inst.operands[0]
    return None


@rule("call", name="usub_sat_with_umin")
def usub_sat_self(inst: Instruction, ctx: RewriteContext):
    """``usub.sat(X, X)`` → ``0``."""
    if not isinstance(inst, Call):
        return None
    if inst.intrinsic_name not in ("usub.sat", "ssub.sat"):
        return None
    if inst.operands[0] is inst.operands[1]:
        return const_int(inst.type, 0)
    return None
