"""Rules for integer comparisons."""

from __future__ import annotations

from typing import Optional

from repro.ir.instructions import (
    ICMP_PREDICATE_SWAP,
    BinaryOperator,
    ICmp,
    Instruction,
)
from repro.ir.types import IntType
from repro.ir.values import Constant, ConstantInt, const_int, match_scalar_int
from repro.opt.engine import RewriteContext, rule
from repro.opt.patterns import m_binop, m_capture, m_constint, match
from repro.semantics import bitvector as bv


def _bool_result(inst: ICmp, value: bool):
    """A true/false constant matching the (possibly vector) result type."""
    return const_int(inst.type, 1 if value else 0)


@rule("icmp", name="icmp_same_operands")
def icmp_same_operands(inst: Instruction, ctx: RewriteContext):
    """``icmp pred X, X`` folds to the predicate's reflexivity."""
    assert isinstance(inst, ICmp)
    if inst.lhs is not inst.rhs:
        return None
    reflexive = {"eq": True, "ne": False,
                 "uge": True, "ule": True, "sge": True, "sle": True,
                 "ugt": False, "ult": False, "sgt": False, "slt": False}
    return _bool_result(inst, reflexive[inst.predicate])


@rule("icmp", name="icmp_const_lhs_swap", category="canonicalize")
def icmp_const_lhs_swap(inst: Instruction, ctx: RewriteContext):
    """Move a constant LHS to the RHS, swapping the predicate."""
    assert isinstance(inst, ICmp)
    if isinstance(inst.lhs, Constant) and not isinstance(inst.rhs, Constant):
        inst.operands[0], inst.operands[1] = inst.rhs, inst.lhs
        inst.predicate = ICMP_PREDICATE_SWAP[inst.predicate]
        return inst
    return None


@rule("icmp", name="icmp_unsigned_tautology")
def icmp_unsigned_tautology(inst: Instruction, ctx: RewriteContext):
    """Tautological unsigned bounds: ``ult X, 0``, ``ule X, -1``, ..."""
    assert isinstance(inst, ICmp)
    scalar = inst.lhs.type.scalar_type()
    if not isinstance(scalar, IntType):
        return None
    constant = match_scalar_int(inst.rhs)
    if constant is None:
        return None
    value, width = constant.value, scalar.bits
    if inst.predicate == "ult" and value == 0:
        return _bool_result(inst, False)
    if inst.predicate == "uge" and value == 0:
        return _bool_result(inst, True)
    if inst.predicate == "ugt" and value == bv.mask(width):
        return _bool_result(inst, False)
    if inst.predicate == "ule" and value == bv.mask(width):
        return _bool_result(inst, True)
    if inst.predicate == "slt" and value == bv.signed_min(width):
        return _bool_result(inst, False)
    if inst.predicate == "sge" and value == bv.signed_min(width):
        return _bool_result(inst, True)
    if inst.predicate == "sgt" and value == bv.signed_max(width):
        return _bool_result(inst, False)
    if inst.predicate == "sle" and value == bv.signed_max(width):
        return _bool_result(inst, True)
    return None


@rule("icmp", name="icmp_canonical_strictness", category="canonicalize")
def icmp_canonical_strictness(inst: Instruction, ctx: RewriteContext):
    """Non-strict compares against constants become strict:
    ``sle X, C`` → ``slt X, C+1`` etc. (LLVM's canonical form)."""
    assert isinstance(inst, ICmp)
    scalar = inst.lhs.type.scalar_type()
    if not isinstance(scalar, IntType):
        return None
    constant = match_scalar_int(inst.rhs)
    if constant is None:
        return None
    value, width = constant.value, scalar.bits
    new_pred: Optional[str] = None
    new_value = value
    if inst.predicate == "sle" and value != bv.signed_max(width):
        new_pred, new_value = "slt", value + 1
    elif inst.predicate == "sge" and value != bv.signed_min(width):
        new_pred, new_value = "sgt", value - 1
    elif inst.predicate == "ule" and value != bv.mask(width):
        new_pred, new_value = "ult", value + 1
    elif inst.predicate == "uge" and value != 0:
        new_pred, new_value = "ugt", value - 1
    if new_pred is None:
        return None
    return ctx.icmp(new_pred, inst.lhs,
                    const_int(inst.lhs.type, new_value))


@rule("icmp", name="icmp_eq_add_const")
def icmp_eq_add_const(inst: Instruction, ctx: RewriteContext):
    """``icmp eq/ne (add X, C1), C2`` → ``icmp eq/ne X, C2-C1``."""
    assert isinstance(inst, ICmp)
    if inst.predicate not in ("eq", "ne"):
        return None
    bindings = match(
        m_binop("add", m_capture("x"), m_constint("c1")),
        inst.lhs)
    if bindings is None:
        return None
    c2 = match_scalar_int(inst.rhs)
    if c2 is None:
        return None
    c1 = bindings["c1"]
    assert isinstance(c1, ConstantInt)
    return ctx.icmp(inst.predicate, bindings["x"],
                    const_int(inst.lhs.type, c2.value - c1.value))


@rule("icmp", name="icmp_eq_xor_const")
def icmp_eq_xor_const(inst: Instruction, ctx: RewriteContext):
    """``icmp eq/ne (xor X, C1), C2`` → ``icmp eq/ne X, C1^C2``."""
    assert isinstance(inst, ICmp)
    if inst.predicate not in ("eq", "ne"):
        return None
    bindings = match(
        m_binop("xor", m_capture("x"), m_constint("c1")),
        inst.lhs)
    if bindings is None:
        return None
    c2 = match_scalar_int(inst.rhs)
    if c2 is None:
        return None
    c1 = bindings["c1"]
    assert isinstance(c1, ConstantInt)
    return ctx.icmp(inst.predicate, bindings["x"],
                    const_int(inst.lhs.type, c1.value ^ c2.value))


@rule("icmp", name="icmp_sub_zero")
def icmp_sub_zero(inst: Instruction, ctx: RewriteContext):
    """``icmp eq/ne (sub X, Y), 0`` → ``icmp eq/ne X, Y``."""
    assert isinstance(inst, ICmp)
    if inst.predicate not in ("eq", "ne"):
        return None
    constant = match_scalar_int(inst.rhs)
    if constant is None or not constant.is_zero:
        return None
    lhs = inst.lhs
    if isinstance(lhs, BinaryOperator) and lhs.opcode == "sub":
        return ctx.icmp(inst.predicate, lhs.lhs, lhs.rhs)
    if isinstance(lhs, BinaryOperator) and lhs.opcode == "xor":
        return ctx.icmp(inst.predicate, lhs.lhs, lhs.rhs)
    return None


@rule("icmp", name="icmp_zext_const")
def icmp_zext_const(inst: Instruction, ctx: RewriteContext):
    """``icmp pred (zext X), C`` → compare at the narrow width when C
    fits (eq/ne and unsigned orders only)."""
    assert isinstance(inst, ICmp)
    from repro.ir.instructions import Cast
    lhs = inst.lhs
    if not (isinstance(lhs, Cast) and lhs.opcode == "zext"):
        return None
    if inst.predicate not in ("eq", "ne", "ult", "ule", "ugt", "uge"):
        return None
    constant = match_scalar_int(inst.rhs)
    if constant is None:
        return None
    narrow = lhs.value.type.scalar_type()
    assert isinstance(narrow, IntType)
    if constant.value > bv.mask(narrow.bits):
        # The compare is decided by the width alone for eq/ne.
        if inst.predicate == "eq":
            return _bool_result(inst, False)
        if inst.predicate == "ne":
            return _bool_result(inst, True)
        return None
    return ctx.icmp(inst.predicate, lhs.value,
                    const_int(lhs.value.type, constant.value))
