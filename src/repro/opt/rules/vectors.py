"""Rules for vector element manipulation."""

from __future__ import annotations

from repro.ir.instructions import (
    ExtractElement,
    InsertElement,
    Instruction,
    ShuffleVector,
)
from repro.ir.values import ConstantInt, ConstantVector
from repro.opt.engine import RewriteContext, rule


@rule("extractelement", name="extract_of_insert_same_index")
def extract_of_insert_same_index(inst: Instruction, ctx: RewriteContext):
    """``extractelement (insertelement V, E, i), i`` → ``E``."""
    assert isinstance(inst, ExtractElement)
    vector = inst.vector
    index = inst.index
    if not isinstance(vector, InsertElement):
        return None
    if not (isinstance(index, ConstantInt)
            and isinstance(vector.index, ConstantInt)):
        return None
    if index.value == vector.index.value:
        return vector.element
    return None


@rule("extractelement", name="extract_const_vector")
def extract_const_vector(inst: Instruction, ctx: RewriteContext):
    """``extractelement <const vector>, C`` → lane constant."""
    assert isinstance(inst, ExtractElement)
    vector = inst.vector
    index = inst.index
    if not (isinstance(vector, ConstantVector)
            and isinstance(index, ConstantInt)):
        return None
    if index.value >= len(vector.elements):
        return None
    return vector.elements[index.value]


@rule("shufflevector", name="shuffle_identity")
def shuffle_identity(inst: Instruction, ctx: RewriteContext):
    """A shuffle selecting lanes 0..N-1 from operand 0 is the operand."""
    assert isinstance(inst, ShuffleVector)
    source = inst.operands[0]
    if inst.type != source.type:
        return None
    if all(m == i for i, m in enumerate(inst.mask)):
        return source
    return None


@rule("shufflevector", name="shuffle_identity_rhs")
def shuffle_identity_rhs(inst: Instruction, ctx: RewriteContext):
    """A shuffle selecting lanes N..2N-1 in order is operand 1."""
    assert isinstance(inst, ShuffleVector)
    source = inst.operands[1]
    if inst.type != source.type:
        return None
    count = source.type.count
    if all(m == count + i for i, m in enumerate(inst.mask)):
        return source
    return None
