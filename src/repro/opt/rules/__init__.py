"""Rewrite rules grouped by instruction family.

Importing this package registers every rule into
:data:`repro.opt.engine.DEFAULT_REGISTRY`; the "fixed patch" rules live in
:mod:`repro.opt.rules.patches` and register into ``PATCH_REGISTRY`` instead.
"""

from repro.opt.rules import (  # noqa: F401  (import for side effects)
    arith,
    casts,
    fcmp,
    icmp,
    intrinsics,
    logic,
    select,
    shifts,
    vectors,
)
