"""Pattern-matching combinators for rewrite rules.

A matcher is a callable ``(value, bindings) -> bool`` that inspects an SSA
value and records captures into ``bindings`` (a dict).  The style mirrors
LLVM's ``PatternMatch.h`` (``m_Add``, ``m_ConstantInt``, ...), which keeps
the rewrite rules in :mod:`repro.opt.rules` short and declarative.

Example::

    # match (x - y) > (x + y)
    pat = m_icmp("sgt",
                 m_binop("sub", m_capture("x"), m_capture("y")),
                 m_binop("add", m_same("x"), m_same("y")))
    bindings = match(pat, inst)
    if bindings is not None:
        ...
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.ir.instructions import (
    BinaryOperator,
    Call,
    Cast,
    FCmp,
    Freeze,
    ICmp,
    Instruction,
    Load,
    Select,
)
from repro.ir.values import (
    Constant,
    ConstantFP,
    ConstantInt,
    ConstantVector,
    Value,
    match_scalar_int,
)

Bindings = Dict[str, Value]
Matcher = Callable[[Value, Bindings], bool]


def match(matcher: Matcher, value: Value) -> Optional[Bindings]:
    """Run a matcher; returns the bindings on success, None on failure."""
    bindings: Bindings = {}
    if matcher(value, bindings):
        return bindings
    return None


# -- leaf matchers ---------------------------------------------------------

def m_any() -> Matcher:
    return lambda value, bindings: True


def m_capture(name: str, inner: Optional[Matcher] = None) -> Matcher:
    """Capture the value under ``name``; optionally require ``inner``."""

    def matcher(value: Value, bindings: Bindings) -> bool:
        if inner is not None and not inner(value, bindings):
            return False
        bindings[name] = value
        return True

    return matcher


def m_same(name: str) -> Matcher:
    """Match only the value already captured under ``name``."""

    def matcher(value: Value, bindings: Bindings) -> bool:
        return name in bindings and bindings[name] is value

    return matcher


def m_specific(target: Value) -> Matcher:
    return lambda value, bindings: value is target


def m_constant() -> Matcher:
    return lambda value, bindings: isinstance(value, Constant)


def m_constint(name: Optional[str] = None) -> Matcher:
    """Match a scalar or splat integer constant; capture the scalar lane."""

    def matcher(value: Value, bindings: Bindings) -> bool:
        scalar = match_scalar_int(value)
        if scalar is None:
            return False
        if name is not None:
            bindings[name] = scalar
            bindings[name + ".orig"] = value
        return True

    return matcher


def m_constint_where(predicate: Callable[[ConstantInt], bool],
                     name: Optional[str] = None) -> Matcher:
    def matcher(value: Value, bindings: Bindings) -> bool:
        scalar = match_scalar_int(value)
        if scalar is None or not predicate(scalar):
            return False
        if name is not None:
            bindings[name] = scalar
            bindings[name + ".orig"] = value
        return True

    return matcher


def m_zero() -> Matcher:
    return m_constint_where(lambda c: c.is_zero)


def m_one() -> Matcher:
    return m_constint_where(lambda c: c.is_one)


def m_all_ones() -> Matcher:
    return m_constint_where(lambda c: c.is_all_ones)


def m_signbit() -> Matcher:
    """INT_MIN of the operand width."""
    return m_constint_where(
        lambda c: c.value == 1 << (c.type.bits - 1))


def m_power_of_two(name: Optional[str] = None) -> Matcher:
    return m_constint_where(
        lambda c: c.value > 0 and c.value & (c.value - 1) == 0, name)


def m_constfp(name: Optional[str] = None) -> Matcher:
    def matcher(value: Value, bindings: Bindings) -> bool:
        scalar: Optional[ConstantFP] = None
        if isinstance(value, ConstantFP):
            scalar = value
        elif isinstance(value, ConstantVector) and value.is_splat:
            lane = value.elements[0]
            if isinstance(lane, ConstantFP):
                scalar = lane
        if scalar is None:
            return False
        if name is not None:
            bindings[name] = scalar
        return True

    return matcher


def m_fp_zero() -> Matcher:
    def matcher(value: Value, bindings: Bindings) -> bool:
        probe: Bindings = {}
        if not m_constfp("c")(value, probe):
            return False
        constant = probe["c"]
        assert isinstance(constant, ConstantFP)
        return constant.is_zero

    return matcher


# -- instruction matchers --------------------------------------------------

def m_binop(opcode: str, lhs: Matcher, rhs: Matcher,
            commutative: bool = False,
            flags: Sequence[str] = ()) -> Matcher:
    """Match a binary operator; ``commutative=True`` also tries swapped
    operands.  ``flags`` lists flags that must be present."""

    def matcher(value: Value, bindings: Bindings) -> bool:
        if not isinstance(value, BinaryOperator) or value.opcode != opcode:
            return False
        if any(flag not in value.flags for flag in flags):
            return False
        snapshot = dict(bindings)
        if lhs(value.lhs, bindings) and rhs(value.rhs, bindings):
            return True
        bindings.clear()
        bindings.update(snapshot)
        if commutative:
            if lhs(value.rhs, bindings) and rhs(value.lhs, bindings):
                return True
            bindings.clear()
            bindings.update(snapshot)
        return False

    return matcher


def m_icmp(predicate: Optional[str], lhs: Matcher, rhs: Matcher,
           capture_as: Optional[str] = None) -> Matcher:
    """Match an icmp; ``predicate=None`` matches any predicate and the
    instruction can be captured for predicate inspection."""

    def matcher(value: Value, bindings: Bindings) -> bool:
        if not isinstance(value, ICmp):
            return False
        if predicate is not None and value.predicate != predicate:
            return False
        snapshot = dict(bindings)
        if lhs(value.lhs, bindings) and rhs(value.rhs, bindings):
            if capture_as is not None:
                bindings[capture_as] = value
            return True
        bindings.clear()
        bindings.update(snapshot)
        return False

    return matcher


def m_fcmp(predicate: Optional[str], lhs: Matcher, rhs: Matcher,
           capture_as: Optional[str] = None) -> Matcher:
    def matcher(value: Value, bindings: Bindings) -> bool:
        if not isinstance(value, FCmp):
            return False
        if predicate is not None and value.predicate != predicate:
            return False
        snapshot = dict(bindings)
        if lhs(value.lhs, bindings) and rhs(value.rhs, bindings):
            if capture_as is not None:
                bindings[capture_as] = value
            return True
        bindings.clear()
        bindings.update(snapshot)
        return False

    return matcher


def m_select(cond: Matcher, tval: Matcher, fval: Matcher) -> Matcher:
    def matcher(value: Value, bindings: Bindings) -> bool:
        if not isinstance(value, Select):
            return False
        snapshot = dict(bindings)
        if (cond(value.condition, bindings)
                and tval(value.true_value, bindings)
                and fval(value.false_value, bindings)):
            return True
        bindings.clear()
        bindings.update(snapshot)
        return False

    return matcher


def m_cast(opcode: str, inner: Matcher,
           capture_as: Optional[str] = None) -> Matcher:
    def matcher(value: Value, bindings: Bindings) -> bool:
        if not isinstance(value, Cast) or value.opcode != opcode:
            return False
        snapshot = dict(bindings)
        if inner(value.value, bindings):
            if capture_as is not None:
                bindings[capture_as] = value
            return True
        bindings.clear()
        bindings.update(snapshot)
        return False

    return matcher


def m_intrinsic(base_name: str, *arg_matchers: Matcher,
                commutative: bool = False) -> Matcher:
    """Match a call to an intrinsic family (value args only)."""

    def matcher(value: Value, bindings: Bindings) -> bool:
        if not isinstance(value, Call):
            return False
        if value.intrinsic_name != base_name:
            return False
        args = value.operands[: len(arg_matchers)]
        if len(args) < len(arg_matchers):
            return False
        snapshot = dict(bindings)
        if all(m(a, bindings) for m, a in zip(arg_matchers, args)):
            return True
        bindings.clear()
        bindings.update(snapshot)
        if commutative and len(arg_matchers) == 2:
            if (arg_matchers[0](args[1], bindings)
                    and arg_matchers[1](args[0], bindings)):
                return True
            bindings.clear()
            bindings.update(snapshot)
        return False

    return matcher


def m_freeze(inner: Matcher) -> Matcher:
    def matcher(value: Value, bindings: Bindings) -> bool:
        return isinstance(value, Freeze) and inner(value.value, bindings)

    return matcher


def m_load(capture_as: Optional[str] = None) -> Matcher:
    def matcher(value: Value, bindings: Bindings) -> bool:
        if not isinstance(value, Load):
            return False
        if capture_as is not None:
            bindings[capture_as] = value
        return True

    return matcher


def m_not(inner: Matcher) -> Matcher:
    """Match ``xor X, -1`` in either operand order."""
    return m_binop("xor", inner, m_all_ones(), commutative=True)


def m_neg(inner: Matcher) -> Matcher:
    """Match ``sub 0, X``."""
    return m_binop("sub", m_zero(), inner)


def m_one_use(inner: Matcher) -> Matcher:
    """Match only when the value is an instruction with exactly one use.

    Use counts are maintained by the rewrite engine before rule dispatch.
    """

    def matcher(value: Value, bindings: Bindings) -> bool:
        if isinstance(value, Instruction) and len(value.uses) > 1:
            return False
        return inner(value, bindings)

    return matcher
