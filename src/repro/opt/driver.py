"""The ``opt`` substitute: parse, optimize, canonicalize, report.

:func:`run_opt` is what the LPO pipeline calls on every LLM candidate —
it either returns the optimized function or an ``opt``-style error message
that the loop feeds back to the model (step 3/6 in the paper's Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import repro.opt.rules  # noqa: F401 — side effect: registers all rules
from repro.errors import IRError, ParseError
from repro.ir.function import Function
from repro.ir.parser import parse_function
from repro.ir.printer import print_function
from repro.opt.engine import (
    PATCH_REGISTRY,
    CombineStats,
    InstCombine,
    RuleInfo,
)


@dataclass
class OptResult:
    """Outcome of one ``opt`` invocation."""

    ok: bool
    function: Optional[Function] = None
    error: str = ""
    changed: bool = False
    stats: CombineStats = field(default_factory=CombineStats)

    @property
    def is_failed(self) -> bool:
        return not self.ok

    @property
    def error_message(self) -> str:
        return self.error

    @property
    def new_candidate(self) -> str:
        assert self.function is not None
        return print_function(self.function)


def patch_rules(issue_ids: Sequence[int] = ()) -> Sequence[RuleInfo]:
    """The "fixed patch" rules for the given LLVM issue ids.

    With no argument, every patch rule is returned (the "current LLVM
    head" configuration used by the yearly comparison in Figure 5).
    """
    import repro.opt.rules.patches  # noqa: F401 — registers patch rules
    rules = PATCH_REGISTRY.all_rules()
    if not issue_ids:
        return rules
    wanted = set(issue_ids)
    return tuple(info for info in rules if info.issue_id in wanted)


def optimize_function(function: Function,
                      patches: Sequence[RuleInfo] = (),
                      stats: Optional[CombineStats] = None) -> bool:
    """Optimize ``function`` in place; returns True if changed."""
    combiner = InstCombine(extra_rules=patches)
    return combiner.run(function, stats=stats)


def run_opt(candidate: Union[str, Function],
            patches: Sequence[RuleInfo] = ()) -> OptResult:
    """The full ``opt -O3`` stand-in over a textual or parsed function.

    Parsing errors are reported exactly the way the paper shows them
    (``error: expected instruction opcode`` with a source caret) so the
    feedback loop behaves like the real toolchain.
    """
    if isinstance(candidate, str):
        try:
            function = parse_function(candidate)
        except ParseError as exc:
            return OptResult(ok=False, error=exc.render())
    else:
        function = candidate.clone()
    stats = CombineStats()
    try:
        changed = optimize_function(function, patches=patches, stats=stats)
    except IRError as exc:
        return OptResult(ok=False, error=f"error: {exc}")
    return OptResult(ok=True, function=function, changed=changed,
                     stats=stats)


def can_further_optimize(function: Function,
                         patches: Sequence[RuleInfo] = ()) -> bool:
    """Can our optimizer still improve this wrapped window?

    Used by the extractor (Algorithm 2, line 7-8): windows the stock
    optimizer can already shrink are not interesting LPO inputs.
    """
    copy = function.clone()
    combiner = InstCombine(extra_rules=patches)
    changed = combiner.run(copy)
    if not changed:
        return False
    # A change that does not reduce the instruction count is mere
    # canonicalization; the window is still worth sending to the LLM.
    return copy.instruction_count() < function.instruction_count()
