"""The optimizer: InstCombine-style rewriting, DCE, constant folding.

Public surface::

    from repro.opt import run_opt, optimize_function, can_further_optimize
"""

from repro.opt.dce import run_dce
from repro.opt.driver import (
    OptResult,
    can_further_optimize,
    optimize_function,
    patch_rules,
    run_opt,
)
from repro.opt.engine import (
    DEFAULT_REGISTRY,
    PATCH_REGISTRY,
    CombineStats,
    InstCombine,
    RewriteContext,
    RuleInfo,
    RuleRegistry,
    rule,
)
from repro.opt.fold import fold_instruction

__all__ = [
    "run_dce",
    "OptResult", "can_further_optimize", "optimize_function",
    "patch_rules", "run_opt",
    "DEFAULT_REGISTRY", "PATCH_REGISTRY", "CombineStats", "InstCombine",
    "RewriteContext", "RuleInfo", "RuleRegistry", "rule",
    "fold_instruction",
]
