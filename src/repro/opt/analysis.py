"""Lightweight value analyses used by rewrite rules.

``may_be_poison`` is the guard rules use before hoisting a value out of a
conditionally-executed position (e.g. turning ``select`` into ``or``): if
the value could be poison, the rule must freeze it first or bail out.

Function arguments are treated as *defined* (noundef) values — the LPO
extractor wraps unknown operands of a window as fresh arguments, which
stand for concrete runtime values of the enclosing program.  The
refinement checker quantifies over the same space, so optimizer and
verifier agree.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.instructions import Call, Cast, Freeze, Instruction
from repro.ir.types import IntType
from repro.ir.values import (
    Argument,
    Constant,
    ConstantVector,
    PoisonValue,
    UndefValue,
    Value,
    match_scalar_int,
)

_POISON_GENERATING_FLAGS = frozenset(
    {"nuw", "nsw", "exact", "disjoint", "nneg", "samesign"})


def may_be_poison(value: Value, depth: int = 6) -> bool:
    """Conservatively decide whether ``value`` could be poison.

    Returns True when unsure.  ``depth`` bounds the recursion through
    operand chains.
    """
    if isinstance(value, (PoisonValue, UndefValue)):
        return True
    if isinstance(value, ConstantVector):
        return any(isinstance(lane, (PoisonValue, UndefValue))
                   for lane in value.elements)
    if isinstance(value, Constant):
        return False
    if isinstance(value, Argument):
        return False  # wrapped-window arguments stand for defined values
    if isinstance(value, Freeze):
        return False
    if not isinstance(value, Instruction) or depth <= 0:
        return True
    inst = value
    if _POISON_GENERATING_FLAGS & inst.flags:
        return True
    if inst.opcode in ("shl", "lshr", "ashr"):
        amount = match_scalar_int(inst.operands[1])
        scalar = inst.type.scalar_type()
        if amount is None or not isinstance(scalar, IntType):
            return True
        if amount.value >= scalar.bits:
            return True
    if isinstance(inst, Cast) and inst.opcode in ("fptoui", "fptosi"):
        return True
    if isinstance(inst, Call):
        base = inst.intrinsic_name
        if base in ("abs", "ctlz", "cttz"):
            tail = match_scalar_int(inst.operands[-1])
            if tail is None or not tail.is_zero:
                return True
        elif base not in ("umin", "umax", "smin", "smax", "ctpop",
                          "bswap", "bitreverse", "fshl", "fshr",
                          "uadd.sat", "usub.sat", "sadd.sat", "ssub.sat",
                          "fabs", "minnum", "maxnum", "copysign"):
            return True
    if inst.opcode in ("load", "phi", "extractelement", "insertelement",
                       "shufflevector", "getelementptr"):
        # Loads can read poison bytes; shuffles introduce poison lanes.
        return True
    return any(may_be_poison(op, depth - 1) for op in inst.operands)


def is_non_zero_constant(value: Value) -> Optional[bool]:
    """Tri-state constant non-zero test: True/False, or None if unknown."""
    constant = match_scalar_int(value)
    if constant is None:
        return None
    return not constant.is_zero
