"""Dead code elimination for straight-line and multi-block functions."""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import Instruction


def recompute_uses(function: Function) -> None:
    """Rebuild the ``uses`` list on every value from scratch."""
    for argument in function.arguments:
        argument.uses = []
    for inst in function.instructions():
        inst.uses = []
    for inst in function.instructions():
        for operand in inst.operands:
            if hasattr(operand, "uses"):
                operand.uses.append(inst)


def is_trivially_dead(inst: Instruction) -> bool:
    """Dead iff unused, not a terminator, and free of side effects."""
    if inst.is_terminator or inst.has_side_effects:
        return False
    return not inst.uses


def run_dce(function: Function) -> bool:
    """Remove trivially dead instructions until a fixpoint; returns whether
    anything was removed."""
    removed_any = False
    while True:
        recompute_uses(function)
        dead = [inst for inst in function.instructions()
                if is_trivially_dead(inst)]
        if not dead:
            return removed_any
        for inst in dead:
            inst.parent.remove(inst)
        removed_any = True
