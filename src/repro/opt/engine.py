"""The InstCombine-style fixpoint rewrite engine.

Rules are small functions ``rule(inst, ctx) -> Optional[Value]`` registered
per root opcode.  A rule may:

* return ``None`` — no match;
* return an existing value — every use of ``inst`` is redirected to it and
  ``inst`` becomes dead;
* build new instructions through the :class:`RewriteContext` and return the
  final one — they are inserted before ``inst`` and uses are redirected;
* mutate ``inst`` in place (swap operands, change flags) and return
  ``inst`` itself.

The engine iterates (fold → rules → DCE) to a bounded fixpoint, mirroring
how LLVM's InstCombine drains its worklist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import IRError
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    BinaryOperator,
    Call,
    Cast,
    FCmp,
    Freeze,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Select,
)
from repro.ir.intrinsics import intrinsic_callee, intrinsic_signature
from repro.ir.types import Type
from repro.ir.values import Constant, Value, const_bool, const_int
from repro.opt.dce import recompute_uses, run_dce
from repro.opt.fold import fold_instruction, fold_undef_shortcuts

Rule = Callable[[Instruction, "RewriteContext"], Optional[Value]]


@dataclass
class RuleInfo:
    """Metadata attached to every registered rule."""

    name: str
    opcodes: Tuple[str, ...]
    function: Rule
    category: str = "simplify"
    issue_id: Optional[int] = None   # set for "fixed patch" rules


class RuleRegistry:
    """An ordered, opcode-indexed collection of rewrite rules."""

    def __init__(self) -> None:
        self._by_opcode: Dict[str, List[RuleInfo]] = {}
        self._all: List[RuleInfo] = []

    def register(self, info: RuleInfo) -> None:
        self._all.append(info)
        for opcode in info.opcodes:
            self._by_opcode.setdefault(opcode, []).append(info)

    def rules_for(self, opcode: str) -> Sequence[RuleInfo]:
        return self._by_opcode.get(opcode, ())

    def all_rules(self) -> Sequence[RuleInfo]:
        return tuple(self._all)

    def __len__(self) -> int:
        return len(self._all)


#: The default registry holding the "implemented" InstCombine rule set.
DEFAULT_REGISTRY = RuleRegistry()

#: Registry of "fixed patch" rules, enabled per issue for Table 5 replays.
PATCH_REGISTRY = RuleRegistry()


def rule(*opcodes: str, name: Optional[str] = None,
         category: str = "simplify",
         registry: Optional[RuleRegistry] = None,
         issue_id: Optional[int] = None) -> Callable[[Rule], Rule]:
    """Decorator registering a rewrite rule for the given root opcodes."""

    def decorator(function: Rule) -> Rule:
        info = RuleInfo(
            name=name or function.__name__,
            opcodes=tuple(opcodes),
            function=function,
            category=category,
            issue_id=issue_id,
        )
        (registry if registry is not None else DEFAULT_REGISTRY).register(
            info)
        return function

    return decorator


class RewriteContext:
    """Builds replacement instructions for a rule application.

    Instructions created through the context are *pending*: the engine
    inserts them before the matched instruction only when the rule
    succeeds (returns non-None), so failed rules leak nothing.
    """

    def __init__(self, function: Function, block: BasicBlock):
        self.function = function
        self.block = block
        self.pending: List[Instruction] = []

    def _track(self, inst: Instruction) -> Instruction:
        self.pending.append(inst)
        return inst

    # -- constructors -----------------------------------------------------
    def binary(self, opcode: str, lhs: Value, rhs: Value,
               flags: Sequence[str] = ()) -> Instruction:
        return self._track(BinaryOperator(opcode, lhs, rhs, flags))

    def icmp(self, predicate: str, lhs: Value, rhs: Value) -> Instruction:
        return self._track(ICmp(predicate, lhs, rhs))

    def fcmp(self, predicate: str, lhs: Value, rhs: Value,
             flags: Sequence[str] = ()) -> Instruction:
        return self._track(FCmp(predicate, lhs, rhs, flags))

    def select(self, cond: Value, tval: Value, fval: Value) -> Instruction:
        return self._track(Select(cond, tval, fval))

    def cast(self, opcode: str, value: Value, dest: Type,
             flags: Sequence[str] = ()) -> Instruction:
        return self._track(Cast(opcode, value, dest, flags))

    def freeze(self, value: Value) -> Instruction:
        return self._track(Freeze(value))

    def load(self, loaded_type: Type, pointer: Value,
             align: int = 1) -> Instruction:
        return self._track(Load(loaded_type, pointer, align))

    def gep(self, source_type: Type, pointer: Value, index: Value,
            flags: Sequence[str] = ()) -> Instruction:
        return self._track(GetElementPtr(source_type, pointer, index, flags))

    def intrinsic(self, base_name: str, args: Sequence[Value],
                  tail: bool = False) -> Instruction:
        suffix_type = args[0].type
        callee = intrinsic_callee(base_name, suffix_type)
        signature = intrinsic_signature(callee)
        if signature is None:
            raise IRError(f"cannot resolve intrinsic {callee}")
        result, expected = signature
        call_args = list(args)
        if len(call_args) == len(expected) - 1:
            call_args.append(const_bool(False))
        flags = ("tail",) if tail else ()
        return self._track(Call(callee, result, call_args, flags))

    def not_(self, value: Value) -> Instruction:
        return self.binary("xor", value, const_int(value.type, -1))

    def neg(self, value: Value) -> Instruction:
        return self.binary("sub", const_int(value.type, 0), value)

    def constant(self, type_: Type, value: int) -> Constant:
        return const_int(type_, value)


@dataclass
class CombineStats:
    """Counters reported by one optimizer run.

    ``rules_tried`` counts every pattern-match attempt; it is the
    deterministic stand-in for the compile-time tracker's
    ``instruction:u`` metric in the Table 5 experiment (more registered
    rules → more match attempts → "slower compile").
    """

    iterations: int = 0
    folds: int = 0
    rules_tried: int = 0
    rule_applications: Dict[str, int] = field(default_factory=dict)

    @property
    def total_rewrites(self) -> int:
        return self.folds + sum(self.rule_applications.values())


class InstCombine:
    """Fixpoint pattern-match-and-rewrite over a function."""

    MAX_ITERATIONS = 32

    def __init__(self, registry: Optional[RuleRegistry] = None,
                 extra_rules: Sequence[RuleInfo] = ()):
        self.registry = registry if registry is not None else DEFAULT_REGISTRY
        self.extra_by_opcode: Dict[str, List[RuleInfo]] = {}
        for info in extra_rules:
            for opcode in info.opcodes:
                self.extra_by_opcode.setdefault(opcode, []).append(info)

    def _rules_for(self, opcode: str) -> List[RuleInfo]:
        rules = list(self.registry.rules_for(opcode))
        rules.extend(self.extra_by_opcode.get(opcode, ()))
        return rules

    def run(self, function: Function,
            stats: Optional[CombineStats] = None) -> bool:
        """Optimize ``function`` in place; returns True if changed."""
        stats = stats if stats is not None else CombineStats()
        changed_any = False
        for _ in range(self.MAX_ITERATIONS):
            stats.iterations += 1
            changed = self._run_once(function, stats)
            changed |= run_dce(function)
            if not changed:
                break
            changed_any = True
        return changed_any

    # Guard against a rule that reports change without changing anything,
    # which would otherwise loop forever at one instruction index.
    MAX_REWRITES_PER_PASS = 10_000

    def _run_once(self, function: Function, stats: CombineStats) -> bool:
        changed = False
        rewrites = 0
        recompute_uses(function)
        for block in function.blocks:
            index = 0
            while index < len(block.instructions):
                if rewrites > self.MAX_REWRITES_PER_PASS:
                    raise IRError(
                        "instcombine did not converge (rule ping-pong?)")
                inst = block.instructions[index]
                if inst.is_terminator:
                    index += 1
                    continue
                replacement = self._try_fold(inst)
                if replacement is not None:
                    function.replace_all_uses(inst, replacement)
                    block.remove(inst)
                    recompute_uses(function)
                    stats.folds += 1
                    rewrites += 1
                    changed = True
                    continue
                applied = self._try_rules(function, block, index, inst,
                                          stats)
                if applied:
                    recompute_uses(function)
                    rewrites += 1
                    changed = True
                    # Re-examine the same index: either the instruction was
                    # replaced (new inst now at this slot) or mutated.
                    continue
                index += 1
        return changed

    def _try_fold(self, inst: Instruction) -> Optional[Constant]:
        shortcut = fold_undef_shortcuts(inst)
        if shortcut is not None:
            return shortcut
        return fold_instruction(inst)

    def _try_rules(self, function: Function, block: BasicBlock, index: int,
                   inst: Instruction, stats: CombineStats) -> bool:
        for info in self._rules_for(inst.opcode):
            stats.rules_tried += 1
            ctx = RewriteContext(function, block)
            try:
                replacement = info.function(inst, ctx)
            except IRError:
                # A rule that builds an ill-typed replacement simply does
                # not apply; this keeps rule authors honest without
                # crashing the whole pipeline.
                continue
            if replacement is None:
                continue
            stats.rule_applications[info.name] = (
                stats.rule_applications.get(info.name, 0) + 1)
            if replacement is inst:
                # In-place mutation (canonicalization).
                for pending in ctx.pending:
                    block.insert(block.index_of(inst), pending)
                return True
            insert_at = block.index_of(inst)
            for pending in ctx.pending:
                block.insert(insert_at, pending)
                insert_at += 1
            function.replace_all_uses(inst, replacement)
            block.remove(inst)
            return True
        return False
