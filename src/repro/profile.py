"""Lightweight per-phase wall-clock accounting and trace spans.

The execution plane wants to know where a window's wall time went (opt,
LLM, interestingness, each verify tier, parsing) without threading a
stats object through every call.  ``collect()`` pushes a sink onto a
thread-local stack; every ``phase(name)`` block adds its elapsed seconds
to *all* active sinks, so an outer collector (a service job) sees the
phases of an inner one (a pipeline window) without any plumbing.

Nested phases with dotted names simply accumulate side by side:
``verify`` and ``verify.testing`` are independent keys, so the parent
phase keeps the full tier cost while the child records its slice.

``trace()`` collects the same blocks as a *span tree* instead of a flat
sum: each ``phase`` block becomes one span dict (``name``, ``start``
seconds since the trace began, ``elapsed``, ``parent`` index into the
span list, ``-1`` for roots) in completion order.  Spans are plain
JSON-safe dicts so a service worker can ship a job's tree across the
process boundary in its payload exactly like the flat phases; the
structure survives intact (see :func:`span_children` /
:func:`render_spans`).

Keep this module dependency-free: it is imported from both ``repro.core``
and ``repro.verify``, which import each other.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Sequence

_ACTIVE = threading.local()


def _sinks() -> list:
    stack = getattr(_ACTIVE, "stack", None)
    if stack is None:
        stack = []
        _ACTIVE.stack = stack
    return stack


def _tracers() -> list:
    stack = getattr(_ACTIVE, "tracers", None)
    if stack is None:
        stack = []
        _ACTIVE.tracers = stack
    return stack


class _SpanTracer:
    """One active ``trace()`` collection: spans plus its open-span
    stack (indices into ``spans``), all relative to ``origin``."""

    __slots__ = ("spans", "open", "origin")

    def __init__(self):
        self.spans: List[dict] = []
        self.open: List[int] = []
        self.origin = time.perf_counter()

    def enter(self, name: str, started: float) -> int:
        parent = self.open[-1] if self.open else -1
        index = len(self.spans)
        self.spans.append({"name": name,
                           "start": started - self.origin,
                           "elapsed": 0.0, "parent": parent})
        self.open.append(index)
        return index

    def exit(self, index: int, elapsed: float) -> None:
        self.spans[index]["elapsed"] = elapsed
        self.open.remove(index)


@contextmanager
def collect() -> Iterator[Dict[str, float]]:
    """Collect phase timings observed in this thread until exit.

    Yields the sink dict; it fills in as ``phase()`` blocks close and is
    safe to read (or merge elsewhere) after the ``with`` exits.
    """
    sink: Dict[str, float] = {}
    stack = _sinks()
    stack.append(sink)
    try:
        yield sink
    finally:
        stack.remove(sink)


@contextmanager
def trace() -> Iterator[List[dict]]:
    """Collect a span tree for this thread until exit.

    Yields the span list; every ``phase(name)`` block that closes while
    the trace is active appends one span dict (``name``/``start``/
    ``elapsed``/``parent``).  Traces nest independently of ``collect()``
    sinks — both observe the same blocks.
    """
    tracer = _SpanTracer()
    stack = _tracers()
    stack.append(tracer)
    try:
        yield tracer.spans
    finally:
        stack.remove(tracer)


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Time a block and credit it to ``name`` in every active sink.

    With no active collector this is a few hundred nanoseconds of
    overhead, so instrumented hot paths stay cheap when nobody listens.
    """
    stack = _sinks()
    tracers = _tracers()
    if not stack and not tracers:
        yield
        return
    started = time.perf_counter()
    opened = [(tracer, tracer.enter(name, started))
              for tracer in tracers]
    try:
        yield
    finally:
        elapsed = time.perf_counter() - started
        for sink in stack:
            sink[name] = sink.get(name, 0.0) + elapsed
        for tracer, index in opened:
            tracer.exit(index, elapsed)


def merge(into: Dict[str, float], phases: Dict[str, float]) -> None:
    """Sum-merge one phase dict into an accumulator."""
    for name, seconds in phases.items():
        if isinstance(seconds, (int, float)):
            into[name] = into.get(name, 0.0) + float(seconds)


def render(phases: Dict[str, float], limit: int = 6) -> str:
    """One-line summary, largest phases first."""
    items = sorted(phases.items(), key=lambda kv: (-kv[1], kv[0]))[:limit]
    return " ".join(f"{name} {seconds:.2f}s" for name, seconds in items)


def round_spans(spans: Sequence[dict], digits: int = 6) -> List[dict]:
    """A JSON/wire-friendly copy with rounded float fields."""
    return [{"name": span["name"],
             "start": round(span["start"], digits),
             "elapsed": round(span["elapsed"], digits),
             "parent": span["parent"]}
            for span in spans]


def span_children(spans: Sequence[dict]) -> Dict[int, List[int]]:
    """Parent index (``-1`` for roots) → child indices, each list in
    start order."""
    children: Dict[int, List[int]] = {}
    for index, span in enumerate(spans):
        children.setdefault(span.get("parent", -1), []).append(index)
    for siblings in children.values():
        siblings.sort(key=lambda index: spans[index]["start"])
    return children


def render_spans(spans: Sequence[dict]) -> str:
    """Multi-line tree view, two spaces of indent per depth::

        verify 1.20s @0.03s
          verify.testing 0.40s @0.03s
    """
    children = span_children(spans)
    lines: List[str] = []

    def walk(parent: int, depth: int) -> None:
        for index in children.get(parent, ()):
            span = spans[index]
            lines.append(f"{'  ' * depth}{span['name']} "
                         f"{span['elapsed']:.2f}s @{span['start']:.2f}s")
            walk(index, depth + 1)

    walk(-1, 0)
    return "\n".join(lines)
