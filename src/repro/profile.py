"""Lightweight per-phase wall-clock accounting.

The execution plane wants to know where a window's wall time went (opt,
LLM, interestingness, each verify tier, parsing) without threading a
stats object through every call.  ``collect()`` pushes a sink onto a
thread-local stack; every ``phase(name)`` block adds its elapsed seconds
to *all* active sinks, so an outer collector (a service job) sees the
phases of an inner one (a pipeline window) without any plumbing.

Nested phases with dotted names simply accumulate side by side:
``verify`` and ``verify.testing`` are independent keys, so the parent
phase keeps the full tier cost while the child records its slice.

Keep this module dependency-free: it is imported from both ``repro.core``
and ``repro.verify``, which import each other.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator

_ACTIVE = threading.local()


def _sinks() -> list:
    stack = getattr(_ACTIVE, "stack", None)
    if stack is None:
        stack = []
        _ACTIVE.stack = stack
    return stack


@contextmanager
def collect() -> Iterator[Dict[str, float]]:
    """Collect phase timings observed in this thread until exit.

    Yields the sink dict; it fills in as ``phase()`` blocks close and is
    safe to read (or merge elsewhere) after the ``with`` exits.
    """
    sink: Dict[str, float] = {}
    stack = _sinks()
    stack.append(sink)
    try:
        yield sink
    finally:
        stack.remove(sink)


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Time a block and credit it to ``name`` in every active sink.

    With no active collector this is a few hundred nanoseconds of
    overhead, so instrumented hot paths stay cheap when nobody listens.
    """
    stack = _sinks()
    if not stack:
        yield
        return
    started = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - started
        for sink in stack:
            sink[name] = sink.get(name, 0.0) + elapsed


def merge(into: Dict[str, float], phases: Dict[str, float]) -> None:
    """Sum-merge one phase dict into an accumulator."""
    for name, seconds in phases.items():
        if isinstance(seconds, (int, float)):
            into[name] = into.get(name, 0.0) + float(seconds)


def render(phases: Dict[str, float], limit: int = 6) -> str:
    """One-line summary, largest phases first."""
    items = sorted(phases.items(), key=lambda kv: (-kv[1], kv[0]))[:limit]
    return " ".join(f"{name} {seconds:.2f}s" for name, seconds in items)
