"""Exception hierarchy shared by every repro subsystem.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at the pipeline boundary.  Parse errors carry
LLVM-``opt``-style location information because the LPO feedback loop sends
the rendered message back to the LLM verbatim.

The operationally interesting errors — the ones a service client wants
to branch on — carry a stable :attr:`ReproError.code` string matching
the wire protocol's ``ERROR_CODES`` table, so one ``except`` hierarchy
covers in-process calls and socket round-trips alike:
``BackendError``/``BackendTimeoutError`` (the LLM transport),
``AuthenticationError``/``QuotaExceededError`` (mesh tenancy),
``ServiceBusyError`` (queue backpressure), and ``WorkerCrashError``
(executor-pool deaths).  They live here — not in the subsystems that
raise them — so client code imports one module; the historical homes
(``repro.llm.backends``, ``repro.service.protocol``,
``repro.service.server``, ``repro.core.executor``) re-export the same
classes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    ``code`` is a stable machine-readable tag (empty for errors that
    only ever surface in-process); coded errors round-trip the service
    wire as typed exceptions via ``ERROR_CODES``.
    """

    code = ""


class IRError(ReproError):
    """Raised when an IR object is constructed or mutated inconsistently."""


class TypeMismatchError(IRError):
    """Raised when operand types do not satisfy an instruction's contract."""


class ParseError(ReproError):
    """A syntax error in textual IR, rendered in LLVM ``opt`` style.

    Attributes:
        line: 1-based line number of the offending token.
        column: 1-based column number of the offending token.
        source_line: the raw text of the offending line, if available.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0,
                 source_line: str = ""):
        super().__init__(message)
        self.message = message
        self.line = line
        self.column = column
        self.source_line = source_line

    def render(self) -> str:
        """Render the error the way ``opt`` prints parse diagnostics."""
        out = f"error: {self.message}"
        if self.source_line:
            caret = " " * max(self.column - 1, 0) + "^"
            out = f"{out}\n{self.source_line}\n{caret}"
        return out


class VerificationError(ReproError):
    """Raised when the module verifier finds malformed IR."""


class EvaluationError(ReproError):
    """Raised when the interpreter is given IR it cannot execute."""


class UndefinedBehaviorError(EvaluationError):
    """Immediate undefined behavior encountered during concrete evaluation.

    Examples: division by zero, branching on poison, loading through a
    poison pointer, out-of-bounds access to an argument buffer.
    """

    def __init__(self, reason: str):
        super().__init__(f"undefined behavior: {reason}")
        self.reason = reason


class SolverError(ReproError):
    """Raised when the SAT/bit-blasting backend cannot encode a query."""


class SynthesisError(ReproError):
    """Raised by the baseline superoptimizers on unsupported input."""


class TimeoutExpired(ReproError):
    """A tool exceeded its configured (simulated or wall-clock) budget."""

    def __init__(self, budget_seconds: float, elapsed_seconds: float):
        super().__init__(
            f"timeout: budget {budget_seconds:.1f}s exceeded "
            f"(elapsed {elapsed_seconds:.1f}s)")
        self.budget_seconds = budget_seconds
        self.elapsed_seconds = elapsed_seconds


class LLMError(ReproError):
    """Raised by LLM clients on malformed requests or exhausted budgets."""


class ConfigError(ReproError):
    """Raised when pipeline configuration values are inconsistent."""


# -- coded errors (the client-facing taxonomy) ------------------------------
class BackendError(ReproError):
    """A completion backend failed to produce a response."""

    code = "backend"


class BackendTimeoutError(BackendError):
    """The request (including every retry) ran out of time."""

    code = "timeout"


class AuthenticationError(ReproError):
    """A rejected credential: a bad mesh token, or a provider scheme
    whose API-key environment variable is unset/refused."""

    code = "auth"


class QuotaExceededError(ReproError):
    """A per-client quota said no; retry later or shed load."""

    code = "quota"


class ServiceBusyError(ReproError):
    """The service's bounded job queue is full (backpressure)."""

    code = "busy"


class WorkerCrashError(ReproError):
    """A pool worker died (or the pool broke) while running a job."""

    code = "worker_crash"
