"""repro — a reproduction of "LPO: Discovering Missed Peephole
Optimizations with Large Language Models" (ASPLOS 2026).

The package re-implements the paper's full stack in pure Python:

* :mod:`repro.ir` — a miniature LLVM-style IR (parser, printer, SSA);
* :mod:`repro.semantics` — concrete semantics with undef/poison/UB;
* :mod:`repro.opt` — an InstCombine-style optimizer (the ``opt`` stand-in);
* :mod:`repro.verify` — SAT-backed translation validation (Alive2 stand-in);
* :mod:`repro.mca` — a static cycle model (llvm-mca stand-in);
* :mod:`repro.llm` — simulated LLM clients with capability profiles;
* :mod:`repro.core` — LPO itself: extractor, interestingness, the loop,
  plus the batch scheduler and digest-keyed result cache that scale it;
* :mod:`repro.service` — the persistent optimization service: a
  JSON-lines daemon with a bounded job queue, warm per-worker
  pipelines, and a sharded job cache (``repro serve`` / ``submit`` /
  ``status``);
* :mod:`repro.baselines` — Souper- and Minotaur-style superoptimizers;
* :mod:`repro.corpus` — issue datasets and the synthetic project corpus;
* :mod:`repro.experiments` — one runner per paper table/figure.

Quickstart::

    from repro import LPOPipeline, SimulatedLLM, GEMINI20T, window_from_text
    pipeline = LPOPipeline(SimulatedLLM(GEMINI20T))
    result = pipeline.optimize_window(window_from_text(ir_text))

Corpus-scale runs fan windows over a worker pool and reuse verified
outcomes across rounds and re-runs (``python -m repro batch FILE --jobs 4
--cache lpo-cache.json`` is the CLI spelling)::

    from repro import LPOPipeline, ResultCache, SimulatedLLM, GEMINI20T
    pipeline = LPOPipeline(SimulatedLLM(GEMINI20T),
                           cache=ResultCache("lpo-cache.json"))
    results = pipeline.run_batch(windows, jobs=4)   # == pipeline.run(...)
    print(results.stats.render())   # findings, wall-clock, cache hits
    pipeline.cache.save()           # next run skips verified digests
"""

from repro.baselines import Minotaur, Souper
from repro.core import (
    BatchResult,
    BatchScheduler,
    BatchStats,
    CacheStats,
    LPOPipeline,
    PipelineConfig,
    ResultCache,
    ShardedResultCache,
    Window,
    WindowResult,
    extract_from_corpus,
    window_from_text,
    wrap_as_function,
)
from repro.ir import parse_function, parse_module, print_function
from repro.llm import (
    ALL_MODELS,
    GEMINI20,
    GEMINI20T,
    GEMINI25,
    GEMMA3,
    GPT41,
    LLAMA33,
    O4MINI,
    RQ1_MODELS,
    ModelProfile,
    SimulatedLLM,
)
from repro.opt import can_further_optimize, optimize_function, run_opt
from repro.verify import VerificationResult, check_refinement

__version__ = "1.0.0"

__all__ = [
    "Minotaur", "Souper",
    "LPOPipeline", "PipelineConfig", "Window", "WindowResult",
    "BatchResult", "BatchScheduler", "BatchStats",
    "CacheStats", "ResultCache", "ShardedResultCache",
    "extract_from_corpus", "window_from_text", "wrap_as_function",
    "parse_function", "parse_module", "print_function",
    "ALL_MODELS", "GEMINI20", "GEMINI20T", "GEMINI25", "GEMMA3", "GPT41",
    "LLAMA33", "O4MINI", "RQ1_MODELS", "ModelProfile", "SimulatedLLM",
    "can_further_optimize", "optimize_function", "run_opt",
    "VerificationResult", "check_refinement",
    "__version__",
]
