"""Per-opcode latency/throughput tables (the llvm-mca substitute).

The numbers are modelled on AMD Jaguar (``btver2``), the CPU the paper
configures llvm-mca with: divisions are an order of magnitude slower than
simple ALU ops, vector ops pay a lane tax on the 128-bit units, loads hit
the 3-cycle L1.  Interestingness only compares *relative* totals between
a window and its candidate, so the table's shape matters more than its
absolute values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.ir.instructions import Call, Instruction
from repro.ir.types import FloatType, VectorType


@dataclass(frozen=True)
class InstructionCost:
    """Static cost of one instruction on the modelled CPU."""

    latency: float          # cycles until the result is available
    reciprocal_throughput: float  # average issue cost in steady state
    uops: int = 1


_INT_ALU = InstructionCost(1, 0.5)
_INT_MUL = InstructionCost(3, 1.0)
_INT_DIV = InstructionCost(25, 25.0, uops=2)
_SHIFT = InstructionCost(1, 0.5)
_CMP = InstructionCost(1, 0.5)
_SELECT = InstructionCost(1, 0.5)
_CAST_FREE = InstructionCost(1, 0.5)
_LOAD = InstructionCost(3, 1.0)
_STORE = InstructionCost(1, 1.0)
_GEP = InstructionCost(1, 0.5)
_FP_ADD = InstructionCost(3, 1.0)
_FP_MUL = InstructionCost(2, 1.0)
_FP_DIV = InstructionCost(19, 19.0, uops=2)
_FP_CMP = InstructionCost(2, 1.0)
_MINMAX = InstructionCost(1, 0.5)
_BITMANIP = InstructionCost(3, 1.0, uops=2)
_SAT = InstructionCost(2, 1.0)
_VEC_PERMUTE = InstructionCost(1, 0.5)

_OPCODE_COSTS: Dict[str, InstructionCost] = {
    "add": _INT_ALU, "sub": _INT_ALU,
    "and": _INT_ALU, "or": _INT_ALU, "xor": _INT_ALU,
    "mul": _INT_MUL,
    "udiv": _INT_DIV, "sdiv": _INT_DIV,
    "urem": _INT_DIV, "srem": _INT_DIV,
    "shl": _SHIFT, "lshr": _SHIFT, "ashr": _SHIFT,
    "icmp": _CMP,
    "fcmp": _FP_CMP,
    "select": _SELECT,
    "trunc": _CAST_FREE, "zext": _CAST_FREE, "sext": _CAST_FREE,
    "bitcast": InstructionCost(0, 0.25),
    "ptrtoint": _CAST_FREE, "inttoptr": _CAST_FREE,
    "fptrunc": _FP_ADD, "fpext": _FP_ADD,
    "fptoui": _FP_ADD, "fptosi": _FP_ADD,
    "uitofp": _FP_ADD, "sitofp": _FP_ADD,
    "freeze": InstructionCost(0, 0.25),
    "load": _LOAD, "store": _STORE,
    "getelementptr": _GEP,
    "extractelement": _VEC_PERMUTE,
    "insertelement": _VEC_PERMUTE,
    "shufflevector": _VEC_PERMUTE,
    "phi": InstructionCost(0, 0.25),
    "fadd": _FP_ADD, "fsub": _FP_ADD,
    "fmul": _FP_MUL,
    "fdiv": _FP_DIV, "frem": _FP_DIV,
}

_INTRINSIC_COSTS: Dict[str, InstructionCost] = {
    "umin": _MINMAX, "umax": _MINMAX, "smin": _MINMAX, "smax": _MINMAX,
    "abs": _INT_ALU,
    "ctpop": _BITMANIP, "ctlz": _BITMANIP, "cttz": _BITMANIP,
    "bswap": _SHIFT, "bitreverse": _BITMANIP,
    "fshl": _BITMANIP, "fshr": _BITMANIP,
    "uadd.sat": _SAT, "usub.sat": _SAT,
    "sadd.sat": _SAT, "ssub.sat": _SAT,
    "fabs": InstructionCost(1, 0.5),
    "sqrt": InstructionCost(21, 21.0),
    "minnum": _FP_ADD, "maxnum": _FP_ADD,
    "minimum": _FP_ADD, "maximum": _FP_ADD,
    "copysign": _INT_ALU,
    "fma": InstructionCost(5, 1.0), "fmuladd": InstructionCost(5, 1.0),
    "floor": _FP_ADD, "ceil": _FP_ADD, "trunc": _FP_ADD,
    "round": _FP_ADD, "rint": _FP_ADD, "nearbyint": _FP_ADD,
    "canonicalize": InstructionCost(1, 0.5),
    "is.fpclass": _FP_CMP,
}

#: Lane counts above this pay double on btver2's 128-bit SIMD units.
_NATIVE_VECTOR_BITS = 128


def instruction_cost(inst: Instruction) -> InstructionCost:
    """Look up the static cost of ``inst``, scaling for wide vectors."""
    if isinstance(inst, Call):
        base = _INTRINSIC_COSTS.get(inst.intrinsic_name)
        if base is None:
            base = InstructionCost(10, 10.0)   # unknown call: assume slow
    else:
        base = _OPCODE_COSTS.get(inst.opcode)
        if base is None:
            return InstructionCost(0, 0.0, uops=0)   # terminators etc.
    scale = _vector_scale(inst)
    if scale == 1:
        return base
    return InstructionCost(base.latency,
                           base.reciprocal_throughput * scale,
                           base.uops * scale)


def _vector_scale(inst: Instruction) -> int:
    type_ = inst.type
    if not isinstance(type_, VectorType) and inst.operands:
        type_ = inst.operands[0].type
    if not isinstance(type_, VectorType):
        return 1
    try:
        bits = type_.bit_width
    except Exception:
        return 1
    return max(1, (bits + _NATIVE_VECTOR_BITS - 1) // _NATIVE_VECTOR_BITS)


def is_fp_instruction(inst: Instruction) -> bool:
    scalar = inst.type.scalar_type()
    if isinstance(scalar, FloatType):
        return True
    return any(isinstance(op.type.scalar_type(), FloatType)
               for op in inst.operands)
