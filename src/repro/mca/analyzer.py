"""Static cycle estimation over a function (llvm-mca's "Total Cycles").

The model is a dual-issue in-order pipeline approximation: each
instruction issues when its operands are ready and an issue slot is
available, mirroring how llvm-mca's default simulation reports a total
cycle count for a straight-line block repeated in steady state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.ir.function import Function
from repro.ir.values import Value
from repro.mca.cost_model import instruction_cost

_ISSUE_WIDTH = 2


@dataclass
class McaReport:
    """Summary mirroring llvm-mca's headline numbers."""

    total_cycles: float
    instruction_count: int
    total_uops: int
    critical_path: float

    def __str__(self) -> str:
        return (f"Instructions: {self.instruction_count}\n"
                f"Total Cycles: {self.total_cycles:.0f}\n"
                f"Total uOps:   {self.total_uops}\n"
                f"Critical Path: {self.critical_path:.0f}")


def analyze_function(function: Function) -> McaReport:
    """Compute the static cost summary for a function.

    Multi-block functions are summed block by block (the windows LPO
    compares are single-block, so this is exact where it matters).
    """
    ready_at: Dict[Value, float] = {}
    issue_clock = 0.0
    issued_this_cycle = 0
    total_uops = 0
    instruction_count = 0
    critical_path = 0.0

    for argument in function.arguments:
        ready_at[argument] = 0.0

    for inst in function.instructions():
        if inst.is_terminator:
            continue
        cost = instruction_cost(inst)
        instruction_count += 1
        total_uops += cost.uops
        operands_ready = 0.0
        for operand in inst.operands:
            operands_ready = max(operands_ready,
                                 ready_at.get(operand, 0.0))
        issue_time = max(operands_ready, issue_clock)
        # Dual-issue: two instructions may start in one cycle.
        if issue_time == issue_clock:
            issued_this_cycle += 1
            if issued_this_cycle >= _ISSUE_WIDTH:
                issue_clock += max(cost.reciprocal_throughput, 0.5)
                issued_this_cycle = 0
        else:
            issue_clock = issue_time
            issued_this_cycle = 1
        finish = issue_time + cost.latency
        ready_at[inst] = finish
        critical_path = max(critical_path, finish)

    total_cycles = max(critical_path, issue_clock)
    return McaReport(total_cycles=total_cycles,
                     instruction_count=instruction_count,
                     total_uops=total_uops,
                     critical_path=critical_path)


def total_cycles(function: Function) -> float:
    """Shorthand used by the interestingness checker."""
    return analyze_function(function).total_cycles
