"""Static performance analysis (the llvm-mca substitute)."""

from repro.mca.analyzer import McaReport, analyze_function, total_cycles
from repro.mca.cost_model import InstructionCost, instruction_cost

__all__ = ["McaReport", "analyze_function", "total_cycles",
           "InstructionCost", "instruction_cost"]
