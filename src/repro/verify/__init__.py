"""Translation validation (the Alive2 substitute).

Public surface::

    from repro.verify import check_refinement, VerificationResult
"""

from repro.verify.exhaustive import check_exhaustive
from repro.verify.refinement import (
    VerificationResult,
    check_refinement,
    confirm_counterexample,
)
from repro.verify.sat import SatResult, SatSolver
from repro.verify.testing import (
    Counterexample,
    outcome_refines,
    run_refinement_tests,
)

__all__ = [
    "check_exhaustive",
    "VerificationResult", "check_refinement", "confirm_counterexample",
    "SatResult", "SatSolver",
    "Counterexample", "outcome_refines", "run_refinement_tests",
]
