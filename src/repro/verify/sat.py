"""A CDCL SAT solver (the decision engine under the bit-blasting tier).

Implements the standard modern recipe in pure Python:

* two-watched-literal clause propagation,
* first-UIP conflict analysis with clause learning,
* VSIDS-style activity decay for branching,
* Luby restarts and learned-clause deletion,
* a propagation budget so refinement queries degrade gracefully to the
  testing tier instead of hanging.

Literal encoding: variable ``v`` (1-based int) has literals ``+v``/``-v``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SolverError


@dataclass
class SatResult:
    """Outcome of a solve call."""

    status: str                       # "sat", "unsat" or "unknown"
    model: Optional[Dict[int, bool]] = None
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0

    @property
    def is_sat(self) -> bool:
        return self.status == "sat"

    @property
    def is_unsat(self) -> bool:
        return self.status == "unsat"


class _Clause:
    __slots__ = ("literals", "learned", "activity")

    def __init__(self, literals: List[int], learned: bool = False):
        self.literals = literals
        self.learned = learned
        self.activity = 0.0


class SatSolver:
    """CDCL solver instance.  Add clauses, then call :meth:`solve`."""

    def __init__(self, propagation_budget: int = 20_000_000):
        self.clauses: List[_Clause] = []
        self.watches: Dict[int, List[_Clause]] = {}
        self.assignment: Dict[int, bool] = {}
        self.level: Dict[int, int] = {}
        self.reason: Dict[int, Optional[_Clause]] = {}
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.activity: Dict[int, float] = {}
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.num_vars = 0
        self.propagation_budget = propagation_budget
        self.propagations = 0
        self.conflicts = 0
        self.decisions = 0
        self._ok = True

    # -- problem construction ---------------------------------------------
    def new_var(self) -> int:
        self.num_vars += 1
        self.activity[self.num_vars] = 0.0
        return self.num_vars

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause; duplicates and tautologies are cleaned here."""
        seen = set()
        cleaned: List[int] = []
        for lit in literals:
            if lit == 0 or abs(lit) > self.num_vars:
                raise SolverError(f"invalid literal {lit}")
            if -lit in seen:
                return  # tautology
            if lit not in seen:
                seen.add(lit)
                cleaned.append(lit)
        if not cleaned:
            self._ok = False
            return
        if len(cleaned) == 1:
            if not self._enqueue(cleaned[0], None):
                self._ok = False
            return
        clause = _Clause(cleaned)
        self.clauses.append(clause)
        self._watch(clause, cleaned[0])
        self._watch(clause, cleaned[1])

    # -- internal machinery -------------------------------------------------
    def _watch(self, clause: _Clause, literal: int) -> None:
        self.watches.setdefault(-literal, []).append(clause)

    def _value(self, literal: int) -> Optional[bool]:
        var = abs(literal)
        if var not in self.assignment:
            return None
        value = self.assignment[var]
        return value if literal > 0 else not value

    def _enqueue(self, literal: int, reason: Optional[_Clause]) -> bool:
        current = self._value(literal)
        if current is not None:
            return current
        var = abs(literal)
        self.assignment[var] = literal > 0
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail.append(literal)
        return True

    def _propagate(self) -> Optional[_Clause]:
        """Unit propagation; returns a conflicting clause or None."""
        head = getattr(self, "_qhead", 0)
        while head < len(self.trail):
            literal = self.trail[head]
            head += 1
            self.propagations += 1
            watchers = self.watches.get(literal)
            if not watchers:
                continue
            keep: List[_Clause] = []
            index = 0
            while index < len(watchers):
                clause = watchers[index]
                index += 1
                lits = clause.literals
                # Normalize: the false literal should be at position 1.
                if lits[0] == -literal:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self._value(first) is True:
                    keep.append(clause)
                    continue
                # Find a new literal to watch.
                found = False
                for k in range(2, len(lits)):
                    if self._value(lits[k]) is not False:
                        lits[1], lits[k] = lits[k], lits[1]
                        self._watch(clause, lits[1])
                        found = True
                        break
                if found:
                    continue
                keep.append(clause)
                if self._value(first) is False:
                    # Conflict: restore remaining watchers and bail out.
                    keep.extend(watchers[index:])
                    self.watches[literal] = keep
                    self._qhead = len(self.trail)
                    return clause
                self._enqueue(first, clause)
            self.watches[literal] = keep
        self._qhead = head
        return None

    def _bump_var(self, var: int) -> None:
        self.activity[var] = self.activity.get(var, 0.0) + self.var_inc
        if self.activity[var] > 1e100:
            for key in self.activity:
                self.activity[key] *= 1e-100
            self.var_inc *= 1e-100

    def _decay_activities(self) -> None:
        self.var_inc /= self.var_decay

    def _analyze(self, conflict: _Clause) -> Tuple[List[int], int]:
        """First-UIP conflict analysis; returns (learned clause,
        backjump level)."""
        learned: List[int] = []
        seen = set()
        path_count = 0
        pivot: Optional[int] = None
        clause: Optional[_Clause] = conflict
        index = len(self.trail) - 1
        current_level = len(self.trail_lim)
        while True:
            assert clause is not None
            for lit in clause.literals:
                var = abs(lit)
                if pivot is not None and var == abs(pivot):
                    continue
                if var in seen or self.level.get(var, 0) == 0:
                    continue
                seen.add(var)
                self._bump_var(var)
                if self.level[var] >= current_level:
                    path_count += 1
                else:
                    learned.append(lit)
            while index >= 0 and abs(self.trail[index]) not in seen:
                index -= 1
            if index < 0:
                break
            pivot = self.trail[index]
            index -= 1
            seen.discard(abs(pivot))
            path_count -= 1
            if path_count <= 0:
                break
            clause = self.reason.get(abs(pivot))
        assert pivot is not None
        learned.insert(0, -pivot)
        if len(learned) == 1:
            return learned, 0
        # Backjump to the second-highest level in the clause.
        levels = sorted((self.level[abs(lit)] for lit in learned[1:]),
                        reverse=True)
        return learned, levels[0]

    def _backtrack(self, target_level: int) -> None:
        while len(self.trail_lim) > target_level:
            limit = self.trail_lim.pop()
            while len(self.trail) > limit:
                literal = self.trail.pop()
                var = abs(literal)
                del self.assignment[var]
                del self.level[var]
                self.reason.pop(var, None)
        self._qhead = min(getattr(self, "_qhead", 0), len(self.trail))

    def _pick_branch_variable(self) -> Optional[int]:
        best_var = None
        best_activity = -1.0
        for var in range(1, self.num_vars + 1):
            if var not in self.assignment:
                act = self.activity.get(var, 0.0)
                if act > best_activity:
                    best_activity = act
                    best_var = var
        return best_var

    @staticmethod
    def _luby(i: int) -> int:
        """The Luby restart sequence (1,1,2,1,1,2,4,...); 0-based index."""
        i += 1  # classic formulation is 1-based
        while True:
            k = i.bit_length()
            if i == (1 << k) - 1:
                return 1 << (k - 1)
            i -= (1 << (k - 1)) - 1

    # -- main solve loop ---------------------------------------------------
    def solve(self, assumptions: Sequence[int] = ()) -> SatResult:
        if not self._ok:
            return SatResult("unsat")
        self._qhead = 0
        conflict = self._propagate()
        if conflict is not None:
            return SatResult("unsat")
        root_trail = len(self.trail)

        restart_count = 0
        conflicts_until_restart = 64 * self._luby(restart_count)
        conflicts_since_restart = 0

        # Apply assumptions as pseudo-decisions at level >= 1.
        for literal in assumptions:
            self.trail_lim.append(len(self.trail))
            if not self._enqueue(literal, None):
                self._backtrack(0)
                del self.trail[root_trail:]
                return SatResult("unsat")
            conflict = self._propagate()
            if conflict is not None:
                self._backtrack(0)
                return SatResult("unsat")
        assumption_level = len(self.trail_lim)

        while True:
            if self.propagations > self.propagation_budget:
                self._backtrack(0)
                return SatResult("unknown", conflicts=self.conflicts,
                                 decisions=self.decisions,
                                 propagations=self.propagations)
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_since_restart += 1
                if len(self.trail_lim) <= assumption_level:
                    self._backtrack(0)
                    return SatResult("unsat", conflicts=self.conflicts,
                                     decisions=self.decisions,
                                     propagations=self.propagations)
                learned, backjump = self._analyze(conflict)
                backjump = max(backjump, assumption_level)
                self._backtrack(backjump)
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        self._backtrack(0)
                        return SatResult("unsat", conflicts=self.conflicts)
                else:
                    clause = _Clause(list(learned), learned=True)
                    self.clauses.append(clause)
                    self._watch(clause, learned[0])
                    self._watch(clause, learned[1])
                    self._enqueue(learned[0], clause)
                self._decay_activities()
                if conflicts_since_restart >= conflicts_until_restart:
                    restart_count += 1
                    conflicts_since_restart = 0
                    conflicts_until_restart = 64 * self._luby(restart_count)
                    self._backtrack(assumption_level)
                continue
            variable = self._pick_branch_variable()
            if variable is None:
                model = dict(self.assignment)
                self._backtrack(0)
                return SatResult("sat", model=model,
                                 conflicts=self.conflicts,
                                 decisions=self.decisions,
                                 propagations=self.propagations)
            self.decisions += 1
            self.trail_lim.append(len(self.trail))
            # Phase saving would go here; default to False first.
            self._enqueue(-variable, None)
