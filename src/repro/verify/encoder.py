"""Bit-blasting encoder: IR functions → SAT circuits with poison bits.

Every SSA value becomes a vector of lanes, each lane carrying its value
bits plus one *poison* bit; a function-level *UB* bit accumulates
immediate-UB conditions (division by zero, out-of-bounds constant-offset
loads).  Arguments are shared between the source and target functions so
the refinement query quantifies over one input space.

Deliberate scope limits (these fall back to the testing tier, mirroring
how Alive2 itself punts on some constructs):

* floating-point types,
* multi-block functions and phis,
* stores, and loads at non-constant offsets,
* ``undef`` constants and ``freeze`` of possibly-poison values in the
  *source* function (their nondeterminism is universally quantified on
  the wrong side of the query for a plain SAT encoding).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import SolverError
from repro.ir.function import Function
from repro.ir.instructions import (
    BinaryOperator,
    Call,
    Cast,
    ExtractElement,
    Freeze,
    GetElementPtr,
    ICmp,
    InsertElement,
    Instruction,
    Load,
    Ret,
    Select,
    ShuffleVector,
)
from repro.ir.intrinsics import split_intrinsic_callee
from repro.ir.types import IntType, PointerType, Type, VectorType
from repro.ir.values import (
    Argument,
    Constant,
    ConstantInt,
    ConstantPointerNull,
    ConstantVector,
    PoisonValue,
    UndefValue,
    Value,
)
from repro.verify.circuit import Bit, BitVec, CircuitBuilder


class EncodingUnsupported(SolverError):
    """The function uses a construct outside the SAT tier's scope."""


@dataclass
class SymLane:
    """One scalar lane: value bits plus a poison flag."""

    bits: BitVec
    poison: Bit


@dataclass
class SymPointer:
    """A pointer lane: abstract base plus a *concrete* byte offset."""

    base: str
    offset: Optional[int]     # None = symbolic (loads through it punt)
    poison: Bit


SymScalar = Union[SymLane, SymPointer]
SymValue = Union[SymScalar, List[SymScalar]]

BUFFER_BYTES = 64


def _lanes(value: SymValue) -> List[SymScalar]:
    return value if isinstance(value, list) else [value]


class SharedInputs:
    """Argument and memory variables shared by the src/tgt encodings."""

    def __init__(self, builder: CircuitBuilder, function: Function):
        self.builder = builder
        self.args: List[SymValue] = []
        self.buffers: Dict[str, List[BitVec]] = {}
        self.arg_descriptions: List[Tuple[str, Type]] = []
        for argument in function.arguments:
            self.args.append(self._make_argument(argument))
            self.arg_descriptions.append((argument.name, argument.type))

    def _make_argument(self, argument: Argument) -> SymValue:
        type_ = argument.type
        builder = self.builder
        if isinstance(type_, VectorType):
            element = type_.element
            if not isinstance(element, IntType):
                raise EncodingUnsupported(
                    f"vector argument of {element} lanes")
            return [SymLane(builder.bv_var(element.bits), builder.false_lit)
                    for _ in range(type_.count)]
        if isinstance(type_, IntType):
            return SymLane(builder.bv_var(type_.bits), builder.false_lit)
        if isinstance(type_, PointerType):
            base = f"arg{argument.index}"
            self.buffers[base] = [builder.bv_var(8)
                                  for _ in range(BUFFER_BYTES)]
            return SymPointer(base, 0, builder.false_lit)
        raise EncodingUnsupported(f"argument of type {type_}")


class FunctionEncoder:
    """Encodes one function over shared inputs."""

    def __init__(self, builder: CircuitBuilder, inputs: SharedInputs,
                 is_source: bool):
        self.builder = builder
        self.inputs = inputs
        self.is_source = is_source
        self.values: Dict[Value, SymValue] = {}
        self.ub = builder.false_lit

    # -- main entry ----------------------------------------------------------
    def encode(self, function: Function) -> Tuple[SymValue, Bit]:
        if len(function.blocks) != 1:
            raise EncodingUnsupported("multi-block function")
        for argument, sym in zip(function.arguments, self.inputs.args):
            self.values[argument] = sym
        block = function.entry
        result: Optional[SymValue] = None
        for inst in block.instructions:
            if isinstance(inst, Ret):
                if inst.value is None:
                    raise EncodingUnsupported("void return")
                result = self.operand(inst.value)
                break
            self.values[inst] = self.encode_instruction(inst)
        if result is None:
            raise EncodingUnsupported("no return instruction")
        return result, self.ub

    def _add_ub(self, condition: Bit) -> None:
        self.ub = self.builder.or_(self.ub, condition)

    # -- operands ---------------------------------------------------------
    def operand(self, value: Value) -> SymValue:
        if value in self.values:
            return self.values[value]
        if isinstance(value, Constant):
            sym = self.constant(value)
            self.values[value] = sym
            return sym
        raise EncodingUnsupported(f"unbound value %{value.name}")

    def constant(self, constant: Constant) -> SymValue:
        builder = self.builder
        type_ = constant.type
        if isinstance(constant, ConstantInt):
            return SymLane(builder.bv_const(constant.value, type_.bits),
                           builder.false_lit)
        if isinstance(constant, ConstantPointerNull):
            return SymPointer("null", 0, builder.false_lit)
        if isinstance(constant, PoisonValue):
            return self._poison_value(type_)
        if isinstance(constant, UndefValue):
            if self.is_source:
                raise EncodingUnsupported("undef in source function")
            # Target-side undef: adversary picks, so a fresh variable.
            return self._fresh_value(type_)
        if isinstance(constant, ConstantVector):
            lanes: List[SymScalar] = []
            for element in constant.elements:
                lane = self.constant(element)
                assert not isinstance(lane, list)
                lanes.append(lane)
            return lanes
        raise EncodingUnsupported(f"constant {constant!r}")

    def _poison_value(self, type_: Type) -> SymValue:
        builder = self.builder
        if isinstance(type_, VectorType):
            element = type_.element
            if not isinstance(element, IntType):
                raise EncodingUnsupported(f"poison vector of {element}")
            return [SymLane(builder.bv_const(0, element.bits),
                            builder.true_lit)
                    for _ in range(type_.count)]
        if isinstance(type_, IntType):
            return SymLane(builder.bv_const(0, type_.bits), builder.true_lit)
        if isinstance(type_, PointerType):
            return SymPointer("null", 0, builder.true_lit)
        raise EncodingUnsupported(f"poison of type {type_}")

    def _fresh_value(self, type_: Type) -> SymValue:
        builder = self.builder
        if isinstance(type_, VectorType):
            element = type_.element
            if not isinstance(element, IntType):
                raise EncodingUnsupported(f"undef vector of {element}")
            return [SymLane(builder.bv_var(element.bits), builder.false_lit)
                    for _ in range(type_.count)]
        if isinstance(type_, IntType):
            return SymLane(builder.bv_var(type_.bits), builder.false_lit)
        raise EncodingUnsupported(f"undef of type {type_}")

    # -- instruction dispatch ----------------------------------------------
    def encode_instruction(self, inst: Instruction) -> SymValue:
        if isinstance(inst, BinaryOperator):
            return self._map_int_lanes(inst, self._binary_lane)
        if isinstance(inst, ICmp):
            return self._encode_icmp(inst)
        if isinstance(inst, Select):
            return self._encode_select(inst)
        if isinstance(inst, Cast):
            return self._encode_cast(inst)
        if isinstance(inst, Call):
            return self._encode_call(inst)
        if isinstance(inst, Freeze):
            return self._encode_freeze(inst)
        if isinstance(inst, Load):
            return self._encode_load(inst)
        if isinstance(inst, GetElementPtr):
            return self._encode_gep(inst)
        if isinstance(inst, ExtractElement):
            return self._encode_extractelement(inst)
        if isinstance(inst, InsertElement):
            return self._encode_insertelement(inst)
        if isinstance(inst, ShuffleVector):
            return self._encode_shufflevector(inst)
        raise EncodingUnsupported(f"instruction '{inst.opcode}'")

    def _map_int_lanes(self, inst: Instruction, lane_fn) -> SymValue:
        scalar = inst.type.scalar_type()
        if not isinstance(scalar, IntType):
            raise EncodingUnsupported(
                f"'{inst.opcode}' on {inst.type} (non-integer)")
        operand_lanes = [_lanes(self.operand(op)) for op in inst.operands]
        out: List[SymScalar] = []
        for lane_tuple in zip(*operand_lanes):
            for lane in lane_tuple:
                if not isinstance(lane, SymLane):
                    raise EncodingUnsupported("pointer lane in integer op")
            out.append(lane_fn(inst, scalar.bits, list(lane_tuple)))
        if isinstance(inst.type, VectorType):
            return out
        return out[0]

    # -- binary ops -----------------------------------------------------------
    def _binary_lane(self, inst: BinaryOperator, width: int,
                     lanes: List[SymLane]) -> SymLane:
        builder = self.builder
        a, b = lanes
        opcode = inst.opcode
        poison = builder.or_(a.poison, b.poison)
        if opcode == "add":
            bits, carry = builder.bv_add(a.bits, b.bits)
            if "nuw" in inst.flags:
                poison = builder.or_(poison, carry)
            if "nsw" in inst.flags:
                overflow = self._signed_add_overflow(a.bits, b.bits, bits)
                poison = builder.or_(poison, overflow)
            return SymLane(bits, poison)
        if opcode == "sub":
            bits, no_borrow = builder.bv_sub(a.bits, b.bits)
            if "nuw" in inst.flags:
                poison = builder.or_(poison, -no_borrow)
            if "nsw" in inst.flags:
                overflow = self._signed_sub_overflow(a.bits, b.bits, bits)
                poison = builder.or_(poison, overflow)
            return SymLane(bits, poison)
        if opcode == "mul":
            bits = builder.bv_mul(a.bits, b.bits)
            if "nuw" in inst.flags or "nsw" in inst.flags:
                wide_a = (builder.bv_sext(a.bits, 2 * width)
                          if "nsw" in inst.flags
                          else builder.bv_zext(a.bits, 2 * width))
                wide_b = (builder.bv_sext(b.bits, 2 * width)
                          if "nsw" in inst.flags
                          else builder.bv_zext(b.bits, 2 * width))
                wide = builder.bv_mul(wide_a, wide_b)
                if "nuw" in inst.flags:
                    high_nonzero = -builder.bv_is_zero(wide[width:])
                    poison = builder.or_(poison, high_nonzero)
                if "nsw" in inst.flags:
                    expected = builder.bv_sext(bits, 2 * width)
                    mismatch = -builder.bv_eq(wide, expected)
                    poison = builder.or_(poison, mismatch)
            return SymLane(bits, poison)
        if opcode in ("udiv", "urem", "sdiv", "srem"):
            return self._division_lane(inst, width, a, b)
        if opcode in ("shl", "lshr", "ashr"):
            return self._shift_lane(inst, width, a, b)
        if opcode == "and":
            bits = [builder.and_(x, y) for x, y in zip(a.bits, b.bits)]
            return SymLane(bits, poison)
        if opcode == "or":
            bits = [builder.or_(x, y) for x, y in zip(a.bits, b.bits)]
            if "disjoint" in inst.flags:
                overlap = -builder.bv_is_zero(
                    [builder.and_(x, y) for x, y in zip(a.bits, b.bits)])
                poison = builder.or_(poison, overlap)
            return SymLane(bits, poison)
        if opcode == "xor":
            bits = [builder.xor_(x, y) for x, y in zip(a.bits, b.bits)]
            return SymLane(bits, poison)
        raise EncodingUnsupported(f"binary op '{opcode}'")

    def _signed_add_overflow(self, a: BitVec, b: BitVec,
                             result: BitVec) -> Bit:
        builder = self.builder
        same_sign = -builder.xor_(a[-1], b[-1])
        flipped = builder.xor_(a[-1], result[-1])
        return builder.and_(same_sign, flipped)

    def _signed_sub_overflow(self, a: BitVec, b: BitVec,
                             result: BitVec) -> Bit:
        builder = self.builder
        diff_sign = builder.xor_(a[-1], b[-1])
        flipped = builder.xor_(a[-1], result[-1])
        return builder.and_(diff_sign, flipped)

    def _division_lane(self, inst: BinaryOperator, width: int,
                       a: SymLane, b: SymLane) -> SymLane:
        builder = self.builder
        opcode = inst.opcode
        divisor_zero = builder.bv_is_zero(b.bits)
        self._add_ub(builder.or_(divisor_zero, b.poison))
        poison = a.poison
        if opcode in ("udiv", "urem"):
            quotient, remainder = builder.bv_udivrem(a.bits, b.bits)
            bits = quotient if opcode == "udiv" else remainder
            if opcode == "udiv" and "exact" in inst.flags:
                poison = builder.or_(poison,
                                     -builder.bv_is_zero(remainder))
            return SymLane(bits, poison)
        # Signed: divide magnitudes, fix signs; INT_MIN/-1 overflow is UB.
        int_min = builder.bv_const(1 << (width - 1), width)
        all_ones = builder.bv_const((1 << width) - 1, width)
        overflow = builder.and_(builder.bv_eq(a.bits, int_min),
                                builder.bv_eq(b.bits, all_ones))
        if opcode == "sdiv":
            self._add_ub(overflow)
        neg_a = builder.bv_neg(a.bits)
        neg_b = builder.bv_neg(b.bits)
        abs_a = builder.bv_mux(a.bits[-1], neg_a, a.bits)
        abs_b = builder.bv_mux(b.bits[-1], neg_b, b.bits)
        quotient, remainder = builder.bv_udivrem(abs_a, abs_b)
        if opcode == "sdiv":
            sign = builder.xor_(a.bits[-1], b.bits[-1])
            bits = builder.bv_mux(sign, builder.bv_neg(quotient), quotient)
            if "exact" in inst.flags:
                poison = builder.or_(poison,
                                     -builder.bv_is_zero(remainder))
            return SymLane(bits, poison)
        # srem takes the sign of the dividend; INT_MIN % -1 == 0.
        bits = builder.bv_mux(a.bits[-1], builder.bv_neg(remainder),
                              remainder)
        bits = builder.bv_mux(overflow, builder.bv_const(0, width), bits)
        return SymLane(bits, poison)

    def _shift_lane(self, inst: BinaryOperator, width: int,
                    a: SymLane, b: SymLane) -> SymLane:
        builder = self.builder
        poison = builder.or_(a.poison, b.poison)
        oversized = builder.bv_oversized(b.bits, width)
        poison = builder.or_(poison, oversized)
        if inst.opcode == "shl":
            bits = builder.bv_shl(a.bits, b.bits)
            if "nuw" in inst.flags:
                back = builder.bv_lshr(bits, b.bits)
                poison = builder.or_(poison, -builder.bv_eq(back, a.bits))
            if "nsw" in inst.flags:
                back = builder.bv_ashr(bits, b.bits)
                poison = builder.or_(poison, -builder.bv_eq(back, a.bits))
            return SymLane(bits, poison)
        if inst.opcode == "lshr":
            bits = builder.bv_lshr(a.bits, b.bits)
        else:
            bits = builder.bv_ashr(a.bits, b.bits)
        if "exact" in inst.flags:
            back = builder.bv_shl(bits, b.bits)
            poison = builder.or_(poison, -builder.bv_eq(back, a.bits))
        return SymLane(bits, poison)

    # -- icmp / select -----------------------------------------------------
    def _encode_icmp(self, inst: ICmp) -> SymValue:
        builder = self.builder
        lhs_lanes = _lanes(self.operand(inst.lhs))
        rhs_lanes = _lanes(self.operand(inst.rhs))
        out: List[SymScalar] = []
        for a, b in zip(lhs_lanes, rhs_lanes):
            if isinstance(a, SymPointer) or isinstance(b, SymPointer):
                out.append(self._icmp_pointer(inst.predicate, a, b))
                continue
            assert isinstance(a, SymLane) and isinstance(b, SymLane)
            poison = builder.or_(a.poison, b.poison)
            if "samesign" in inst.flags:
                poison = builder.or_(
                    poison, builder.xor_(a.bits[-1], b.bits[-1]))
            bit = self._icmp_bit(inst.predicate, a.bits, b.bits)
            out.append(SymLane([bit], poison))
        if isinstance(inst.type, VectorType):
            return out
        return out[0]

    def _icmp_bit(self, predicate: str, a: BitVec, b: BitVec) -> Bit:
        builder = self.builder
        if predicate == "eq":
            return builder.bv_eq(a, b)
        if predicate == "ne":
            return -builder.bv_eq(a, b)
        if predicate == "ult":
            return builder.bv_ult(a, b)
        if predicate == "ule":
            return builder.bv_ule(a, b)
        if predicate == "ugt":
            return builder.bv_ult(b, a)
        if predicate == "uge":
            return builder.bv_ule(b, a)
        if predicate == "slt":
            return builder.bv_slt(a, b)
        if predicate == "sle":
            return builder.bv_sle(a, b)
        if predicate == "sgt":
            return builder.bv_slt(b, a)
        if predicate == "sge":
            return builder.bv_sle(b, a)
        raise EncodingUnsupported(f"icmp predicate {predicate}")

    def _icmp_pointer(self, predicate: str, a: SymScalar,
                      b: SymScalar) -> SymLane:
        builder = self.builder
        if not (isinstance(a, SymPointer) and isinstance(b, SymPointer)):
            raise EncodingUnsupported("mixed pointer/integer icmp")
        if a.offset is None or b.offset is None:
            raise EncodingUnsupported("icmp on symbolic pointer offset")
        poison = builder.or_(a.poison, b.poison)
        key_a, key_b = (a.base, a.offset), (b.base, b.offset)
        result = {
            "eq": key_a == key_b, "ne": key_a != key_b,
            "ult": key_a < key_b, "ule": key_a <= key_b,
            "ugt": key_a > key_b, "uge": key_a >= key_b,
            "slt": key_a < key_b, "sle": key_a <= key_b,
            "sgt": key_a > key_b, "sge": key_a >= key_b,
        }[predicate]
        return SymLane([builder.const_bit(result)], poison)

    def _encode_select(self, inst: Select) -> SymValue:
        builder = self.builder
        cond = self.operand(inst.condition)
        tval = _lanes(self.operand(inst.true_value))
        fval = _lanes(self.operand(inst.false_value))
        vector_cond = isinstance(inst.condition.type, VectorType)
        cond_lanes = _lanes(cond)
        out: List[SymScalar] = []
        for index, (t, f) in enumerate(zip(tval, fval)):
            c = cond_lanes[index] if vector_cond else cond_lanes[0]
            if not isinstance(c, SymLane):
                raise EncodingUnsupported("pointer select condition")
            if not (isinstance(t, SymLane) and isinstance(f, SymLane)):
                return self._select_pointer(inst, c, t, f)
            select_bit = c.bits[0]
            bits = builder.bv_mux(select_bit, t.bits, f.bits)
            chosen_poison = builder.mux(select_bit, t.poison, f.poison)
            poison = builder.or_(c.poison, chosen_poison)
            out.append(SymLane(bits, poison))
        if isinstance(inst.type, VectorType):
            return out
        return out[0]

    def _select_pointer(self, inst: Select, cond: SymLane,
                        t: SymScalar, f: SymScalar) -> SymValue:
        # Pointer select needs a concrete condition; punt.
        raise EncodingUnsupported("select of pointers")

    # -- casts ------------------------------------------------------------
    def _encode_cast(self, inst: Cast) -> SymValue:
        builder = self.builder
        src_scalar = inst.value.type.scalar_type()
        dst_scalar = inst.type.scalar_type()
        if not (isinstance(src_scalar, IntType)
                and isinstance(dst_scalar, IntType)):
            raise EncodingUnsupported(f"cast '{inst.opcode}' on FP/pointer")
        lanes = _lanes(self.operand(inst.value))
        out: List[SymScalar] = []
        for lane in lanes:
            if not isinstance(lane, SymLane):
                raise EncodingUnsupported("pointer lane in cast")
            poison = lane.poison
            if inst.opcode == "trunc":
                bits = builder.bv_trunc(lane.bits, dst_scalar.bits)
                if "nuw" in inst.flags:
                    dropped = lane.bits[dst_scalar.bits:]
                    poison = builder.or_(poison, builder.or_many(dropped))
                if "nsw" in inst.flags:
                    sign = bits[-1]
                    for high in lane.bits[dst_scalar.bits:]:
                        poison = builder.or_(poison,
                                             builder.xor_(high, sign))
            elif inst.opcode == "zext":
                if "nneg" in inst.flags:
                    poison = builder.or_(poison, lane.bits[-1])
                bits = builder.bv_zext(lane.bits, dst_scalar.bits)
            elif inst.opcode == "sext":
                bits = builder.bv_sext(lane.bits, dst_scalar.bits)
            elif inst.opcode == "bitcast":
                bits = lane.bits
            else:
                raise EncodingUnsupported(f"cast '{inst.opcode}'")
            out.append(SymLane(bits, poison))
        if isinstance(inst.type, VectorType):
            return out
        return out[0]

    def _encode_freeze(self, inst: Freeze) -> SymValue:
        builder = self.builder
        lanes = _lanes(self.operand(inst.value))
        out: List[SymScalar] = []
        for lane in lanes:
            if isinstance(lane, SymPointer):
                out.append(SymPointer(lane.base, lane.offset,
                                      builder.false_lit))
                continue
            if lane.poison == builder.false_lit:
                out.append(lane)
                continue
            if self.is_source:
                raise EncodingUnsupported(
                    "freeze of possibly-poison value in source")
            fresh = builder.bv_var(len(lane.bits))
            bits = builder.bv_mux(lane.poison, fresh, lane.bits)
            out.append(SymLane(bits, builder.false_lit))
        if isinstance(inst.type, VectorType):
            return out
        return out[0]

    # -- intrinsics -----------------------------------------------------------
    def _encode_call(self, inst: Call) -> SymValue:
        split = split_intrinsic_callee(inst.callee)
        if split is None:
            raise EncodingUnsupported(f"call to @{inst.callee}")
        base, suffix = split
        scalar = suffix.scalar_type()
        if not isinstance(scalar, IntType):
            raise EncodingUnsupported(f"FP intrinsic {base}")
        return self._map_int_lanes_call(inst, base, scalar.bits)

    def _map_int_lanes_call(self, inst: Call, base: str,
                            width: int) -> SymValue:
        from repro.ir.intrinsics import lookup_intrinsic
        info = lookup_intrinsic(base)
        assert info is not None
        value_args = inst.operands[: info.arity]
        tail_flag = False
        if info.has_bool_tail:
            tail = inst.operands[-1]
            if isinstance(tail, ConstantInt):
                tail_flag = bool(tail.value)
            elif isinstance(tail, Constant):
                tail_flag = False
            else:
                raise EncodingUnsupported(f"{base} with symbolic flag")
        operand_lanes = [_lanes(self.operand(op)) for op in value_args]
        out: List[SymScalar] = []
        for lane_tuple in zip(*operand_lanes):
            for lane in lane_tuple:
                if not isinstance(lane, SymLane):
                    raise EncodingUnsupported("pointer lane in intrinsic")
            out.append(self._intrinsic_lane(base, width,
                                            list(lane_tuple), tail_flag))
        if isinstance(inst.type, VectorType):
            return out
        return out[0]

    def _intrinsic_lane(self, base: str, width: int,
                        lanes: List[SymLane], tail_flag: bool) -> SymLane:
        builder = self.builder
        poison = builder.false_lit
        for lane in lanes:
            poison = builder.or_(poison, lane.poison)
        a = lanes[0]
        if base in ("umin", "umax", "smin", "smax"):
            b = lanes[1]
            if base == "umin":
                cond = builder.bv_ult(a.bits, b.bits)
            elif base == "umax":
                cond = builder.bv_ult(b.bits, a.bits)
            elif base == "smin":
                cond = builder.bv_slt(a.bits, b.bits)
            else:
                cond = builder.bv_slt(b.bits, a.bits)
            return SymLane(builder.bv_mux(cond, a.bits, b.bits), poison)
        if base == "abs":
            int_min = builder.bv_const(1 << (width - 1), width)
            is_min = builder.bv_eq(a.bits, int_min)
            if tail_flag:
                poison = builder.or_(poison, is_min)
            neg = builder.bv_neg(a.bits)
            return SymLane(builder.bv_mux(a.bits[-1], neg, a.bits), poison)
        if base == "ctpop":
            return SymLane(builder.bv_popcount(a.bits, width), poison)
        if base == "ctlz":
            if tail_flag:
                poison = builder.or_(poison, builder.bv_is_zero(a.bits))
            return SymLane(builder.bv_ctlz(a.bits, width), poison)
        if base == "cttz":
            if tail_flag:
                poison = builder.or_(poison, builder.bv_is_zero(a.bits))
            return SymLane(builder.bv_cttz(a.bits, width), poison)
        if base == "bswap":
            count = width // 8
            swapped: BitVec = []
            for byte_index in range(count - 1, -1, -1):
                swapped.extend(a.bits[byte_index * 8: byte_index * 8 + 8])
            return SymLane(swapped, poison)
        if base == "bitreverse":
            return SymLane(list(reversed(a.bits)), poison)
        if base in ("fshl", "fshr"):
            return self._funnel_shift_lane(base, width, lanes, poison)
        if base == "uadd.sat":
            b = lanes[1]
            bits, carry = builder.bv_add(a.bits, b.bits)
            ones = builder.bv_const((1 << width) - 1, width)
            return SymLane(builder.bv_mux(carry, ones, bits), poison)
        if base == "usub.sat":
            b = lanes[1]
            bits, no_borrow = builder.bv_sub(a.bits, b.bits)
            zero = builder.bv_const(0, width)
            return SymLane(builder.bv_mux(no_borrow, bits, zero), poison)
        if base == "sadd.sat":
            b = lanes[1]
            bits, _ = builder.bv_add(a.bits, b.bits)
            overflow = self._signed_add_overflow(a.bits, b.bits, bits)
            saturated = builder.bv_mux(
                a.bits[-1],
                builder.bv_const(1 << (width - 1), width),
                builder.bv_const((1 << (width - 1)) - 1, width))
            return SymLane(builder.bv_mux(overflow, saturated, bits),
                           poison)
        if base == "ssub.sat":
            b = lanes[1]
            bits, _ = builder.bv_sub(a.bits, b.bits)
            overflow = self._signed_sub_overflow(a.bits, b.bits, bits)
            saturated = builder.bv_mux(
                a.bits[-1],
                builder.bv_const(1 << (width - 1), width),
                builder.bv_const((1 << (width - 1)) - 1, width))
            return SymLane(builder.bv_mux(overflow, saturated, bits),
                           poison)
        raise EncodingUnsupported(f"intrinsic {base}")

    def _funnel_shift_lane(self, base: str, width: int,
                           lanes: List[SymLane], poison: Bit) -> SymLane:
        builder = self.builder
        a, b, shift = lanes
        # amount = shift mod width
        if width & (width - 1) == 0:
            log2 = width.bit_length() - 1
            amount = shift.bits[:log2] if log2 else []
        else:
            _, amount = builder.bv_udivrem(
                shift.bits, builder.bv_const(width, width))
        amount = list(amount) + [builder.false_lit]
        concat = list(b.bits) + list(a.bits)          # LSB-first: b low
        if base == "fshl":
            # result = high word of (concat << amount)
            shifted = builder.bv_shl(concat, amount)
            bits = shifted[width:]
        else:
            shifted = builder.bv_lshr(concat, amount)
            bits = shifted[:width]
        return SymLane(bits, poison)

    # -- memory -----------------------------------------------------------
    def _encode_load(self, inst: Load) -> SymValue:
        builder = self.builder
        pointer = self.operand(inst.pointer)
        if not isinstance(pointer, SymPointer):
            raise EncodingUnsupported("load through non-pointer")
        self._add_ub(pointer.poison)
        if pointer.offset is None:
            raise EncodingUnsupported("load at symbolic offset")
        if pointer.base == "null":
            self._add_ub(builder.true_lit)
            return self._poison_value(inst.type)
        buffer = self.inputs.buffers.get(pointer.base)
        if buffer is None:
            raise EncodingUnsupported(f"unknown buffer {pointer.base}")

        def load_scalar(offset: int, scalar: Type) -> SymLane:
            size = max(1, scalar.bit_width // 8)
            if offset < 0 or offset + size > len(buffer):
                self._add_ub(builder.true_lit)
                return SymLane(builder.bv_const(0, scalar.bit_width),
                               builder.false_lit)
            bits: BitVec = []
            for byte_index in range(size):
                bits.extend(buffer[offset + byte_index])
            if isinstance(scalar, IntType) and scalar.bits < size * 8:
                bits = bits[: scalar.bits]
            return SymLane(bits, builder.false_lit)

        type_ = inst.type
        if isinstance(type_, VectorType):
            element = type_.element
            if not isinstance(element, IntType):
                raise EncodingUnsupported("FP vector load")
            lane_size = max(1, element.bits // 8)
            return [load_scalar(pointer.offset + i * lane_size, element)
                    for i in range(type_.count)]
        if not isinstance(type_, IntType):
            raise EncodingUnsupported(f"load of {type_}")
        return load_scalar(pointer.offset, type_)

    def _encode_gep(self, inst: GetElementPtr) -> SymValue:
        pointer = self.operand(inst.pointer)
        if not isinstance(pointer, SymPointer):
            raise EncodingUnsupported("gep on non-pointer")
        index = self.operand(inst.index)
        if isinstance(index, SymLane):
            concrete = self._concrete_value(index.bits)
            if concrete is None:
                return SymPointer(pointer.base, None, index.poison)
            signed = concrete
            width = len(index.bits)
            if signed >> (width - 1):
                signed -= 1 << width
            if pointer.offset is None:
                return SymPointer(pointer.base, None, index.poison)
            poison = self.builder.or_(pointer.poison, index.poison)
            return SymPointer(pointer.base,
                              pointer.offset + signed * inst.element_size,
                              poison)
        raise EncodingUnsupported("gep with non-integer index")

    def _concrete_value(self, bits: BitVec) -> Optional[int]:
        value = 0
        for index, bit in enumerate(bits):
            if bit == self.builder.true_lit:
                value |= 1 << index
            elif bit == self.builder.false_lit:
                continue
            else:
                return None
        return value

    # -- vector element ops ----------------------------------------------
    def _encode_extractelement(self, inst: ExtractElement) -> SymValue:
        vector = _lanes(self.operand(inst.vector))
        index = self.operand(inst.index)
        if not isinstance(index, SymLane):
            raise EncodingUnsupported("extractelement pointer index")
        concrete = self._concrete_value(index.bits)
        if concrete is None:
            raise EncodingUnsupported("extractelement symbolic index")
        if concrete >= len(vector):
            return self._poison_value(inst.type)
        lane = vector[concrete]
        if isinstance(lane, SymLane):
            poison = self.builder.or_(lane.poison, index.poison)
            return SymLane(lane.bits, poison)
        return lane

    def _encode_insertelement(self, inst: InsertElement) -> SymValue:
        vector = list(_lanes(self.operand(inst.vector)))
        element = self.operand(inst.element)
        index = self.operand(inst.index)
        if not isinstance(index, SymLane):
            raise EncodingUnsupported("insertelement pointer index")
        concrete = self._concrete_value(index.bits)
        if concrete is None:
            raise EncodingUnsupported("insertelement symbolic index")
        if concrete >= len(vector):
            return self._poison_value(inst.type)
        assert not isinstance(element, list)
        vector[concrete] = element
        return vector

    def _encode_shufflevector(self, inst: ShuffleVector) -> SymValue:
        lhs = _lanes(self.operand(inst.operands[0]))
        rhs = _lanes(self.operand(inst.operands[1]))
        combined = lhs + rhs
        out: List[SymScalar] = []
        for mask_index in inst.mask:
            if mask_index == -1:
                element = inst.type.element
                if not isinstance(element, IntType):
                    raise EncodingUnsupported("FP shuffle poison lane")
                out.append(SymLane(self.builder.bv_const(0, element.bits),
                                   self.builder.true_lit))
            else:
                out.append(combined[mask_index])
        return out
