"""The Alive2-substitute entry point: :func:`check_refinement`.

Given a source and a target function, decides whether the transformation
src → tgt is a correct refinement.  Four tiers are combined:

0. **static** — a dataflow (known-bits/range) proof that the outputs
   always differ refutes the pair without executing anything; it only
   fires on the poison/UB-free subset where the proof is sound;
1. **testing** — structured + randomized counterexample search (always
   runs first otherwise; catching violations cheaply keeps the loop
   fast);
2. **exhaustive** — a full input-space enumeration when the quantified
   space is small (a proof);
3. **SAT** — bit-blasting both functions over shared inputs and asking a
   CDCL solver for a violating input (a proof when UNSAT).

The result statuses mirror how the LPO pipeline consumes Alive2:

* ``proved``     — refinement holds (formal proof);
* ``validated``  — no violation found, but only testing was applicable
  (floating point, symbolic memory, undef); reported distinctly so the
  pipeline can track proof coverage honestly;
* ``refuted``    — a concrete counterexample exists (its rendering is the
  LLM feedback);
* ``error``      — the pair cannot be compared (signature mismatch, ...).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro import profile
from repro.analysis.dataflow import static_refutation
from repro.analysis.verifier import verify_function
from repro.errors import SolverError
from repro.ir.function import Function
from repro.semantics.domain import Pointer
from repro.semantics.eval import run_function
from repro.semantics.memory import Memory
from repro.verify.circuit import CircuitBuilder
from repro.verify.encoder import (
    BUFFER_BYTES,
    EncodingUnsupported,
    FunctionEncoder,
    SharedInputs,
    SymLane,
    SymPointer,
    _lanes,
)
from repro.verify.exhaustive import check_exhaustive
from repro.verify.sat import SatSolver
from repro.verify.testing import (
    Counterexample,
    outcome_refines,
    run_refinement_tests,
)


@dataclass
class VerificationResult:
    """Outcome of one refinement check."""

    status: str                       # proved/validated/refuted/error
    method: str = ""                  # static/testing/exhaustive/sat
    #: In-process only: results replayed from a ResultCache carry the
    #: rendered text in ``message`` instead (Counterexample holds live
    #: runtime values and is not persisted).  Consume refutations via
    #: ``counter_example``, which is identical warm or cold.
    counterexample: Optional[Counterexample] = None
    message: str = ""
    elapsed_seconds: float = 0.0
    solver_conflicts: int = 0

    @property
    def is_correct(self) -> bool:
        """Does the pipeline treat this as a verified optimization?"""
        return self.status in ("proved", "validated")

    @property
    def is_proof(self) -> bool:
        return self.status == "proved"

    @property
    def counter_example(self) -> str:
        """Alive2-style feedback text (empty unless refuted/error)."""
        if self.counterexample is not None:
            return self.counterexample.render()
        return self.message


def _signature_error(source: Function,
                     target: Function) -> Optional[str]:
    if source.return_type != target.return_type:
        return (f"ERROR: return type mismatch: source returns "
                f"{source.return_type}, target returns "
                f"{target.return_type}")
    if len(source.arguments) != len(target.arguments):
        return (f"ERROR: argument count mismatch: source takes "
                f"{len(source.arguments)}, target takes "
                f"{len(target.arguments)}")
    for index, (a, b) in enumerate(zip(source.arguments,
                                       target.arguments)):
        if a.type != b.type:
            return (f"ERROR: argument {index} type mismatch: "
                    f"{a.type} vs {b.type}")
    return None


def check_refinement(source: Function, target: Function,
                     random_tests: int = 200,
                     exhaustive_bits: int = 16,
                     sat_budget: int = 4_000_000,
                     seed: int = 0) -> VerificationResult:
    """Check that ``target`` refines ``source``.  See module docstring."""
    start = time.perf_counter()

    def done(result: VerificationResult) -> VerificationResult:
        result.elapsed_seconds = time.perf_counter() - start
        return result

    error = _signature_error(source, target)
    if error is not None:
        return done(VerificationResult("error", message=error))

    # Ill-formed functions cannot be compared: the evaluator trusts
    # declared types, so e.g. a candidate that declares i8 but returns
    # an i1 value would otherwise be "proved" against an i8 source by
    # numeric coincidence.  Real Alive2 type-checks its inputs; so do
    # we.  (The pipeline prescreen rejects such candidates earlier
    # with per-code metrics — this gate covers direct callers.)
    for role, function in (("source", source), ("target", target)):
        diagnostics = verify_function(function)
        if diagnostics:
            return done(VerificationResult(
                "error",
                message=f"ERROR: {role} function is ill-formed: "
                        + "; ".join(d.render() for d in diagnostics)))

    # Tier 0: static refutation.  A dataflow proof that the outputs
    # differ for every input skips execution entirely.  Only fires on
    # the total, poison-free subset (see repro.analysis.dataflow), where
    # the testing tier below would refute the same pair anyway — the
    # static tier is never weaker than the dynamic ones, only earlier.
    with profile.phase("verify.static"):
        static_message = static_refutation(source, target)
    if static_message is not None:
        return done(VerificationResult("refuted", method="static",
                                       message=static_message))

    # Tier 1: cheap counterexample search.
    with profile.phase("verify.testing"):
        counterexample = run_refinement_tests(source, target,
                                              random_count=random_tests,
                                              seed=seed)
    if counterexample is not None:
        return done(VerificationResult("refuted", method="testing",
                                       counterexample=counterexample))

    # Tier 2: exhaustive proof for small spaces.
    with profile.phase("verify.exhaustive"):
        status, counterexample = check_exhaustive(
            source, target, max_bits=exhaustive_bits)
    if status == "refuted":
        return done(VerificationResult("refuted", method="exhaustive",
                                       counterexample=counterexample))
    if status == "proved":
        return done(VerificationResult("proved", method="exhaustive"))
    exhaustive_validated = status == "validated"

    # Tier 3: SAT proof.
    try:
        with profile.phase("verify.sat"):
            sat_result = _check_sat(source, target, sat_budget)
    except EncodingUnsupported as exc:
        return done(VerificationResult(
            "validated", method="testing",
            message=f"SAT tier unavailable ({exc}); "
                    f"validated by {random_tests} random tests"))
    except SolverError as exc:
        return done(VerificationResult(
            "validated", method="testing",
            message=f"solver error ({exc}); validated by testing"))
    if sat_result.status == "proved":
        return done(VerificationResult("proved", method="sat",
                                       solver_conflicts=sat_result.conflicts))
    if sat_result.status == "refuted":
        return done(sat_result.result)
    # Budget exhausted.
    method = "exhaustive" if exhaustive_validated else "testing"
    return done(VerificationResult(
        "validated", method=method,
        message="SAT budget exhausted; validated by testing"))


@dataclass
class _SatOutcome:
    status: str
    conflicts: int = 0
    result: VerificationResult = field(
        default_factory=lambda: VerificationResult("error"))


def _check_sat(source: Function, target: Function,
               budget: int) -> _SatOutcome:
    solver = SatSolver(propagation_budget=budget)
    builder = CircuitBuilder(solver)
    inputs = SharedInputs(builder, source)

    src_encoder = FunctionEncoder(builder, inputs, is_source=True)
    src_value, src_ub = src_encoder.encode(source)
    tgt_encoder = FunctionEncoder(builder, inputs, is_source=False)
    tgt_value, tgt_ub = tgt_encoder.encode(target)

    src_lanes = _lanes(src_value)
    tgt_lanes = _lanes(tgt_value)
    if len(src_lanes) != len(tgt_lanes):
        raise EncodingUnsupported("return lane count mismatch")

    violations = [tgt_ub]
    for src_lane, tgt_lane in zip(src_lanes, tgt_lanes):
        if isinstance(src_lane, SymPointer) or isinstance(tgt_lane,
                                                          SymPointer):
            violations.append(
                _pointer_violation(builder, src_lane, tgt_lane))
            continue
        assert isinstance(src_lane, SymLane)
        assert isinstance(tgt_lane, SymLane)
        differ = -builder.bv_eq(src_lane.bits, tgt_lane.bits)
        lane_bad = builder.or_(tgt_lane.poison, differ)
        violations.append(builder.and_(-src_lane.poison, lane_bad))
    bad = builder.and_(-src_ub, builder.or_many(violations))
    if bad == builder.false_lit:
        return _SatOutcome("proved")
    builder.assert_bit(bad)

    sat_result = solver.solve()
    if sat_result.is_unsat:
        return _SatOutcome("proved", conflicts=sat_result.conflicts)
    if sat_result.status == "unknown":
        return _SatOutcome("unknown", conflicts=sat_result.conflicts)

    # SAT: extract a candidate counterexample and confirm it on the
    # interpreter (guards against encoder discrepancies).
    assert sat_result.model is not None
    counterexample = _extract_counterexample(builder, inputs, source,
                                             sat_result.model)
    if counterexample is None:
        return _SatOutcome("unknown", conflicts=sat_result.conflicts)
    if not confirm_counterexample(source, target, counterexample):
        # The encoder and interpreter disagree; trust the interpreter and
        # report no proof rather than a bogus counterexample.
        return _SatOutcome("unknown", conflicts=sat_result.conflicts)
    result = VerificationResult("refuted", method="sat",
                                counterexample=counterexample,
                                solver_conflicts=sat_result.conflicts)
    return _SatOutcome("refuted", conflicts=sat_result.conflicts,
                       result=result)


def _pointer_violation(builder, src_lane, tgt_lane):
    if not (isinstance(src_lane, SymPointer)
            and isinstance(tgt_lane, SymPointer)):
        raise EncodingUnsupported("pointer/integer return mismatch")
    if src_lane.offset is None or tgt_lane.offset is None:
        raise EncodingUnsupported("symbolic pointer return")
    same = (src_lane.base == tgt_lane.base
            and src_lane.offset == tgt_lane.offset)
    differ = builder.const_bit(not same)
    lane_bad = builder.or_(tgt_lane.poison, differ)
    return builder.and_(-src_lane.poison, lane_bad)


def _extract_counterexample(builder, inputs, source,
                            model) -> Optional[Counterexample]:
    from repro.ir.types import IntType, PointerType, VectorType
    args = []
    arg_types = []
    for sym, (name, type_) in zip(inputs.args, inputs.arg_descriptions):
        arg_types.append(type_)
        if isinstance(type_, VectorType):
            lanes = []
            for lane in sym:
                assert isinstance(lane, SymLane)
                lanes.append(builder.bv_value(lane.bits, model))
            args.append(lanes)
        elif isinstance(type_, IntType):
            assert isinstance(sym, SymLane)
            args.append(builder.bv_value(sym.bits, model))
        elif isinstance(type_, PointerType):
            assert isinstance(sym, SymPointer)
            args.append(Pointer(sym.base))
        else:
            return None
    memory = Memory(BUFFER_BYTES)
    memory_bytes = {}
    for base, byte_vecs in inputs.buffers.items():
        data = bytes(builder.bv_value(vec, model) for vec in byte_vecs)
        memory.add_buffer(base, data)
        memory_bytes[base] = list(data)

    # Confirm on the interpreter.
    source_outcome = run_function(source, list(args),
                                  memory=memory.clone())
    counterexample = Counterexample(
        args=args, arg_types=arg_types, memory_bytes=memory_bytes,
        source_outcome=source_outcome)
    return counterexample


def confirm_counterexample(source: Function, target: Function,
                           counterexample: Counterexample) -> bool:
    """Re-run a counterexample through the interpreter; True if the
    violation is real."""
    memory = Memory(BUFFER_BYTES)
    for base, data in counterexample.memory_bytes.items():
        bad = [b for b in data if not isinstance(b, int)]
        if bad:
            # Dropping non-concrete bytes would silently shift every
            # later byte and "confirm" against the wrong memory image.
            raise SolverError(
                f"counterexample memory for buffer {base} contains "
                f"{len(bad)} non-concrete byte(s); cannot replay it "
                f"on the interpreter")
        memory.add_buffer(base, bytes(data))
    src_outcome = run_function(source, list(counterexample.args),
                               memory=memory.clone())
    tgt_outcome = run_function(target, list(counterexample.args),
                               memory=memory.clone())
    ok, _ = outcome_refines(src_outcome, tgt_outcome)
    counterexample.source_outcome = src_outcome
    counterexample.target_outcome = tgt_outcome
    return not ok
