"""Randomized + structured refinement testing (counterexample search).

This is the cheap tier: it cannot prove refinement, but it finds most
violations quickly and is the fallback for constructs the SAT tier does
not encode (floating point, symbolic addresses, undef).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.ir.function import Function
from repro.ir.instructions import Freeze
from repro.ir.types import (
    FloatType,
    IntType,
    PointerType,
    Type,
    VectorType,
)
from repro.semantics.domain import (
    POISON,
    Pointer,
    RuntimeValue,
    format_runtime_value,
    values_equal,
)
from repro.ir.values import UndefValue
from repro.semantics.eval import Outcome, run_function
from repro.semantics.memory import DEFAULT_BUFFER_SIZE, Memory

_INTERESTING_BYTES = (0x00, 0x01, 0x7F, 0x80, 0xFF, 0x55, 0xAA)

_FLOAT_POOL = (0.0, -0.0, 1.0, -1.0, 0.5, 2.0, 255.0,
               float("inf"), float("-inf"), float("nan"),
               1e300, -1e300, 1e-300)


@lru_cache(maxsize=None)
def _int_pool_for_width(width: int) -> Tuple[int, ...]:
    mask = (1 << width) - 1
    pool = {0, 1, 2, mask, mask - 1,
            1 << (width - 1),            # INT_MIN pattern
            (1 << (width - 1)) - 1,      # INT_MAX pattern
            0x55555555 & mask, 0xAAAAAAAA & mask}
    if width > 8:
        pool |= {0xFF, 0x100 & mask, 255, 256 & mask}
    return tuple(sorted(pool))


@dataclass
class Counterexample:
    """A concrete input on which the target fails to refine the source."""

    args: List[RuntimeValue]
    arg_types: List[Type]
    memory_bytes: dict = field(default_factory=dict)
    source_outcome: Optional[Outcome] = None
    target_outcome: Optional[Outcome] = None
    kind: str = "value mismatch"

    def render(self, return_type: Optional[Type] = None) -> str:
        """Render the way Alive2 prints counterexamples — this text goes
        straight back to the LLM as repair feedback."""
        lines = ["Transformation doesn't verify!",
                 f"ERROR: {self.kind}", "", "Example:"]
        for index, (value, type_) in enumerate(
                zip(self.args, self.arg_types)):
            rendered = format_runtime_value(value, type_)
            lines.append(f"{type_} %{index} = {rendered}")
        for base, data in sorted(self.memory_bytes.items()):
            preview = " ".join(f"{b:02x}" if isinstance(b, int) else "??"
                               for b in data[:16])
            lines.append(f"memory[{base}] = {preview} ...")
        if self.source_outcome is not None:
            lines.append("Source value: "
                         + _outcome_str(self.source_outcome, return_type))
        if self.target_outcome is not None:
            lines.append("Target value: "
                         + _outcome_str(self.target_outcome, return_type))
        return "\n".join(lines)


def _outcome_str(outcome: Outcome, return_type: Optional[Type]) -> str:
    if outcome.is_ub:
        return f"UB ({outcome.ub_reason})"
    if outcome.value is None:
        return "void"
    if return_type is not None:
        return format_runtime_value(outcome.value, return_type)
    return repr(outcome.value)


def outcome_refines(source: Outcome, target: Outcome) -> Tuple[bool, str]:
    """Does ``target`` refine ``source`` for one concrete input?

    Returns (ok, reason-if-not).
    """
    if source.is_ub:
        return True, ""
    if target.is_ub:
        return False, "target has UB where source is defined"
    src_value, tgt_value = source.value, target.value
    if (src_value is None) != (tgt_value is None):
        return False, "return value presence mismatch"
    if src_value is not None:
        src_lanes = src_value if isinstance(src_value, list) else [src_value]
        tgt_lanes = tgt_value if isinstance(tgt_value, list) else [tgt_value]
        if len(src_lanes) != len(tgt_lanes):
            return False, "return lane count mismatch"
        for src_lane, tgt_lane in zip(src_lanes, tgt_lanes):
            if src_lane is POISON:
                continue  # poison in source frees the target lane
            if tgt_lane is POISON:
                return False, "target returns poison where source is defined"
            if not values_equal(src_lane, tgt_lane):
                return False, "value mismatch"
    # Memory refinement: defined bytes written by the source must match.
    if source.memory is not None and target.memory is not None:
        if not source.memory.equal_defined_bytes(target.memory):
            return False, "memory contents mismatch"
    return True, ""


class InputGenerator:
    """Generates structured and random inputs for a function signature."""

    def __init__(self, function: Function, seed: int = 0,
                 buffer_size: int = DEFAULT_BUFFER_SIZE):
        self.function = function
        self.rng = random.Random(seed)
        self.buffer_size = buffer_size

    # -- scalar pools ----------------------------------------------------
    # Pools depend only on the width, so they are memoized at module level
    # (rebuilding the set + sort per random lane showed up in profiles).
    def _int_pool(self, width: int) -> Sequence[int]:
        return _int_pool_for_width(width)

    def _float_pool(self) -> Sequence[float]:
        return _FLOAT_POOL

    def _random_lane(self, scalar: Type) -> object:
        if isinstance(scalar, IntType):
            if self.rng.random() < 0.5:
                return self.rng.choice(self._int_pool(scalar.bits))
            return self.rng.getrandbits(scalar.bits)
        if isinstance(scalar, FloatType):
            if self.rng.random() < 0.5:
                return self.rng.choice(self._float_pool())
            return self.rng.uniform(-1e6, 1e6)
        raise AssertionError(f"unexpected scalar {scalar}")

    def _random_value(self, type_: Type, arg_index: int) -> RuntimeValue:
        if isinstance(type_, VectorType):
            return [self._random_lane(type_.element)
                    for _ in range(type_.count)]
        if isinstance(type_, PointerType):
            return Pointer(f"arg{arg_index}")
        return self._random_lane(type_)

    def _random_memory(self) -> Memory:
        memory = Memory(self.buffer_size)
        for index, argument in enumerate(self.function.arguments):
            if isinstance(argument.type, PointerType):
                style = self.rng.random()
                if style < 0.3:
                    data = bytes(self.rng.choice(_INTERESTING_BYTES)
                                 for _ in range(self.buffer_size))
                else:
                    data = bytes(self.rng.getrandbits(8)
                                 for _ in range(self.buffer_size))
                memory.add_buffer(f"arg{index}", data)
        return memory

    def structured_inputs(self) -> Iterator[Tuple[List[RuntimeValue],
                                                  Memory]]:
        """A deterministic sweep over boundary values (first argument
        varies through the pool, others pinned to a few combinations)."""
        arg_types = [a.type for a in self.function.arguments]
        combos: List[List[RuntimeValue]] = [[]]
        for index, type_ in enumerate(arg_types):
            new_combos: List[List[RuntimeValue]] = []
            options = self._options_for(type_, index)
            # Cap the cross product: full pool for the first two args,
            # representative values afterwards.
            if index >= 2:
                options = options[:3]
            for combo in combos:
                for option in options:
                    new_combos.append(combo + [option])
            combos = new_combos
            if len(combos) > 512:
                combos = combos[:512]
        for combo in combos:
            yield combo, self._structured_memory()

    def _options_for(self, type_: Type, index: int) -> List[RuntimeValue]:
        if isinstance(type_, IntType):
            return list(self._int_pool(type_.bits))
        if isinstance(type_, FloatType):
            return list(self._float_pool())
        if isinstance(type_, PointerType):
            return [Pointer(f"arg{index}")]
        if isinstance(type_, VectorType):
            scalar_options = self._options_for(type_.element, index)
            splats: List[RuntimeValue] = [
                [option] * type_.count for option in scalar_options[:6]]
            if len(scalar_options) >= type_.count:
                splats.append(list(scalar_options[: type_.count]))
            return splats
        return []

    def _structured_memory(self) -> Memory:
        memory = Memory(self.buffer_size)
        for index, argument in enumerate(self.function.arguments):
            if isinstance(argument.type, PointerType):
                pattern = bytes((i * 37 + 11) & 0xFF
                                for i in range(self.buffer_size))
                memory.add_buffer(f"arg{index}", pattern)
        return memory

    def random_inputs(self, count: int) -> Iterator[Tuple[List[RuntimeValue],
                                                          Memory]]:
        arg_types = [a.type for a in self.function.arguments]
        for _ in range(count):
            args = [self._random_value(type_, index)
                    for index, type_ in enumerate(arg_types)]
            yield args, self._random_memory()


def _undef_chooser_from_rng(rng: random.Random):

    def chooser(type_: Type) -> RuntimeValue:
        if isinstance(type_, VectorType):
            scalar = type_.element
            return [_random_scalar(rng, scalar) for _ in range(type_.count)]
        return _random_scalar(rng, type_)

    return chooser


def _random_scalar(rng: random.Random, scalar: Type):
    if isinstance(scalar, IntType):
        return rng.getrandbits(scalar.bits)
    if isinstance(scalar, FloatType):
        return rng.uniform(-100.0, 100.0)
    if isinstance(scalar, PointerType):
        return Pointer("null")
    return 0


def _consults_undef_chooser(function: Function) -> bool:
    """Can evaluating ``function`` ever consult the undef chooser?

    The interpreter only asks the chooser when it resolves an
    ``UndefValue`` constant or executes a ``freeze``; a function with
    neither is deterministic, so repeating it with fresh choosers is
    pure waste.  Conservative: aggregate constants are walked lane by
    lane, and phi incoming values are inspected too.
    """
    def has_undef(value) -> bool:
        if isinstance(value, UndefValue):
            return True
        elements = getattr(value, "elements", None)
        if elements is not None:
            return any(has_undef(element) for element in elements)
        return False

    for block in function.blocks:
        for inst in block.instructions:
            if isinstance(inst, Freeze):
                return True
            if any(has_undef(op) for op in inst.operands):
                return True
            for value, _label in getattr(inst, "incoming", ()):
                if has_undef(value):
                    return True
    return False


def run_refinement_tests(source: Function, target: Function,
                         random_count: int = 200,
                         seed: int = 0) -> Optional[Counterexample]:
    """Search for a refinement counterexample by testing.

    Returns the first counterexample found, or None if every tested input
    refines.  Target-side nondeterminism (freeze/undef) is sampled with a
    handful of choosers per input; a target that never consults the
    chooser is deterministic and gets exactly one trial per input, with
    the rng stream untouched so results stay bit-identical either way.
    """
    generator = InputGenerator(source, seed=seed)
    rng = random.Random(seed ^ 0x5EED)
    arg_types = [a.type for a in source.arguments]
    trials = 3 if _consults_undef_chooser(target) else 1

    def check_one(args: List[RuntimeValue],
                  memory: Memory) -> Optional[Counterexample]:
        src_outcome = run_function(source, list(args),
                                   memory=memory.clone())
        for trial in range(trials):
            chooser = (_undef_chooser_from_rng(
                random.Random(rng.getrandbits(32)))
                if trials > 1 else None)
            tgt_outcome = run_function(target, list(args),
                                       memory=memory.clone(),
                                       undef_chooser=chooser)
            ok, reason = outcome_refines(src_outcome, tgt_outcome)
            if not ok:
                return Counterexample(
                    args=list(args),
                    arg_types=arg_types,
                    memory_bytes={base: list(data) for base, data
                                  in memory.buffers.items()},
                    source_outcome=src_outcome,
                    target_outcome=tgt_outcome,
                    kind=reason)
        return None

    for args, memory in generator.structured_inputs():
        result = check_one(args, memory)
        if result is not None:
            return result
    for args, memory in generator.random_inputs(random_count):
        result = check_one(args, memory)
        if result is not None:
            return result
    return None
