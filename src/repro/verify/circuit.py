"""Tseitin circuit construction over a SAT solver.

``Bits`` are solver literals (ints); a bitvector is a list of literals,
least-significant bit first.  The builder hash-conses gates and folds
constants so typical refinement queries stay small.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import SolverError
from repro.verify.sat import SatSolver

Bit = int
BitVec = List[Bit]


class CircuitBuilder:
    """Builds AND/OR/XOR/MUX gates as CNF with structural sharing."""

    def __init__(self, solver: SatSolver):
        self.solver = solver
        self.true_lit = solver.new_var()
        solver.add_clause([self.true_lit])
        self.false_lit = -self.true_lit
        self._and_cache: Dict[Tuple[int, int], int] = {}
        self._xor_cache: Dict[Tuple[int, int], int] = {}

    # -- bit helpers -----------------------------------------------------
    def const_bit(self, value: bool) -> Bit:
        return self.true_lit if value else self.false_lit

    def new_bit(self) -> Bit:
        return self.solver.new_var()

    def not_(self, a: Bit) -> Bit:
        return -a

    def and_(self, a: Bit, b: Bit) -> Bit:
        if a == self.false_lit or b == self.false_lit or a == -b:
            return self.false_lit
        if a == self.true_lit:
            return b
        if b == self.true_lit or a == b:
            return a
        key = (min(a, b), max(a, b))
        cached = self._and_cache.get(key)
        if cached is not None:
            return cached
        out = self.solver.new_var()
        self.solver.add_clause([-out, a])
        self.solver.add_clause([-out, b])
        self.solver.add_clause([out, -a, -b])
        self._and_cache[key] = out
        return out

    def or_(self, a: Bit, b: Bit) -> Bit:
        return -self.and_(-a, -b)

    def xor_(self, a: Bit, b: Bit) -> Bit:
        if a == self.false_lit:
            return b
        if b == self.false_lit:
            return a
        if a == self.true_lit:
            return -b
        if b == self.true_lit:
            return -a
        if a == b:
            return self.false_lit
        if a == -b:
            return self.true_lit
        key = (min(a, b), max(a, b))
        cached = self._xor_cache.get(key)
        if cached is not None:
            return cached
        out = self.solver.new_var()
        self.solver.add_clause([-out, a, b])
        self.solver.add_clause([-out, -a, -b])
        self.solver.add_clause([out, -a, b])
        self.solver.add_clause([out, a, -b])
        self._xor_cache[key] = out
        return out

    def mux(self, select: Bit, if_true: Bit, if_false: Bit) -> Bit:
        if select == self.true_lit:
            return if_true
        if select == self.false_lit:
            return if_false
        if if_true == if_false:
            return if_true
        return self.or_(self.and_(select, if_true),
                        self.and_(-select, if_false))

    def and_many(self, bits: Sequence[Bit]) -> Bit:
        result = self.true_lit
        for bit in bits:
            result = self.and_(result, bit)
        return result

    def or_many(self, bits: Sequence[Bit]) -> Bit:
        result = self.false_lit
        for bit in bits:
            result = self.or_(result, bit)
        return result

    # -- bitvector construction --------------------------------------------
    def bv_const(self, value: int, width: int) -> BitVec:
        return [self.const_bit(bool((value >> i) & 1)) for i in range(width)]

    def bv_var(self, width: int) -> BitVec:
        return [self.new_bit() for _ in range(width)]

    def bv_value(self, bits: BitVec, model: Dict[int, bool]) -> int:
        value = 0
        for index, bit in enumerate(bits):
            var = abs(bit)
            bit_value = model.get(var, False)
            if bit < 0:
                bit_value = not bit_value
            if bit_value:
                value |= 1 << index
        return value

    # -- arithmetic ----------------------------------------------------------
    def bv_add(self, a: BitVec, b: BitVec,
               carry_in: Bit = 0) -> Tuple[BitVec, Bit]:
        """Ripple-carry addition; returns (sum, carry_out)."""
        assert len(a) == len(b)
        carry = carry_in if carry_in else self.false_lit
        out: BitVec = []
        for x, y in zip(a, b):
            s = self.xor_(self.xor_(x, y), carry)
            carry = self.or_(self.and_(x, y),
                             self.and_(carry, self.xor_(x, y)))
            out.append(s)
        return out, carry

    def bv_neg(self, a: BitVec) -> BitVec:
        inverted = [-bit for bit in a]
        result, _ = self.bv_add(inverted, self.bv_const(1, len(a)))
        return result

    def bv_sub(self, a: BitVec, b: BitVec) -> Tuple[BitVec, Bit]:
        """Subtraction via a + ~b + 1; returns (difference, NOT borrow)."""
        inverted = [-bit for bit in b]
        return self.bv_add(a, inverted, carry_in=self.true_lit)

    def bv_mul(self, a: BitVec, b: BitVec) -> BitVec:
        """Shift-and-add multiplication, truncated to the input width."""
        width = len(a)
        accum = self.bv_const(0, width)
        for shift, control in enumerate(b):
            if control == self.false_lit:
                continue
            partial = ([self.false_lit] * shift
                       + [self.and_(bit, control) for bit in a[:width - shift]])
            accum, _ = self.bv_add(accum, partial)
        return accum

    def bv_udivrem(self, a: BitVec, b: BitVec) -> Tuple[BitVec, BitVec]:
        """Restoring division; (quotient, remainder).  Division by zero
        yields quotient=all-ones, remainder=a (hardware convention); the
        encoder guards zero divisors with a UB flag before use."""
        width = len(a)
        remainder = self.bv_const(0, width)
        quotient = [self.false_lit] * width
        for index in range(width - 1, -1, -1):
            remainder = [a[index]] + remainder[:-1]
            diff, no_borrow = self.bv_sub(remainder, b)
            quotient[index] = no_borrow
            remainder = [self.mux(no_borrow, d, r)
                         for d, r in zip(diff, remainder)]
        return quotient, remainder

    # -- comparisons ----------------------------------------------------------
    def bv_eq(self, a: BitVec, b: BitVec) -> Bit:
        return self.and_many([-self.xor_(x, y) for x, y in zip(a, b)])

    def bv_ult(self, a: BitVec, b: BitVec) -> Bit:
        _, no_borrow = self.bv_sub(a, b)
        return -no_borrow

    def bv_ule(self, a: BitVec, b: BitVec) -> Bit:
        return -self.bv_ult(b, a)

    def bv_slt(self, a: BitVec, b: BitVec) -> Bit:
        sign_a, sign_b = a[-1], b[-1]
        flipped_a = a[:-1] + [-sign_a]
        flipped_b = b[:-1] + [-sign_b]
        return self.bv_ult(flipped_a, flipped_b)

    def bv_sle(self, a: BitVec, b: BitVec) -> Bit:
        return -self.bv_slt(b, a)

    # -- selection / shifting --------------------------------------------
    def bv_mux(self, select: Bit, if_true: BitVec,
               if_false: BitVec) -> BitVec:
        return [self.mux(select, t, f) for t, f in zip(if_true, if_false)]

    def bv_shl(self, a: BitVec, amount: BitVec) -> BitVec:
        """Barrel shifter; amounts >= width produce zero."""
        return self._barrel(a, amount, self._shl_by_const)

    def bv_lshr(self, a: BitVec, amount: BitVec) -> BitVec:
        return self._barrel(a, amount, self._lshr_by_const)

    def bv_ashr(self, a: BitVec, amount: BitVec) -> BitVec:
        return self._barrel(a, amount, self._ashr_by_const)

    def _shl_by_const(self, a: BitVec, k: int) -> BitVec:
        width = len(a)
        if k >= width:
            return self.bv_const(0, width)
        return [self.false_lit] * k + a[: width - k]

    def _lshr_by_const(self, a: BitVec, k: int) -> BitVec:
        width = len(a)
        if k >= width:
            return self.bv_const(0, width)
        return a[k:] + [self.false_lit] * k

    def _ashr_by_const(self, a: BitVec, k: int) -> BitVec:
        width = len(a)
        sign = a[-1]
        if k >= width:
            return [sign] * width
        return a[k:] + [sign] * k

    def _barrel(self, a: BitVec, amount: BitVec, shifter) -> BitVec:
        width = len(a)
        result = list(a)
        # Apply power-of-two stages for every amount bit that matters.
        stages = max(1, (width - 1).bit_length())
        for stage in range(stages):
            shifted = shifter(result, 1 << stage)
            result = self.bv_mux(amount[stage] if stage < len(amount)
                                 else self.false_lit,
                                 shifted, result)
        # Any higher amount bit set -> full shift-out.
        high_bits = amount[stages:]
        if high_bits:
            overflow = self.or_many(high_bits)
            result = self.bv_mux(overflow, shifter(a, width), result)
        return result

    def bv_oversized(self, amount: BitVec, width: int) -> Bit:
        """True when ``amount >= width`` (shift poison condition)."""
        return self.bv_ult(self.bv_const(width - 1, len(amount)), amount)

    # -- width changes --------------------------------------------------
    def bv_zext(self, a: BitVec, width: int) -> BitVec:
        return list(a) + [self.false_lit] * (width - len(a))

    def bv_sext(self, a: BitVec, width: int) -> BitVec:
        return list(a) + [a[-1]] * (width - len(a))

    def bv_trunc(self, a: BitVec, width: int) -> BitVec:
        return a[:width]

    def bv_is_zero(self, a: BitVec) -> Bit:
        return self.and_many([-bit for bit in a])

    # -- bit counting (for ctpop/ctlz/cttz) --------------------------------
    def bv_popcount(self, a: BitVec, out_width: int) -> BitVec:
        total = self.bv_const(0, out_width)
        for bit in a:
            addend = self.bv_zext([bit], out_width)
            total, _ = self.bv_add(total, addend)
        return total

    def bv_ctlz(self, a: BitVec, out_width: int) -> BitVec:
        # Muxes are chained LSB→MSB so the highest set bit wins.
        count = self.bv_const(len(a), out_width)
        for position in range(0, len(a)):
            leading = len(a) - 1 - position
            count = self.bv_mux(a[position],
                                self.bv_const(leading, out_width), count)
        return count

    def bv_cttz(self, a: BitVec, out_width: int) -> BitVec:
        count = self.bv_const(len(a), out_width)
        for position in range(len(a) - 1, -1, -1):
            count = self.bv_mux(a[position],
                                self.bv_const(position, out_width), count)
        return count

    def assert_bit(self, bit: Bit) -> None:
        if bit == self.false_lit:
            raise SolverError("asserted constant-false bit")
        self.solver.add_clause([bit])
