"""Exhaustive refinement checking for small input spaces.

When the total number of input bits is small (no memory, narrow integer
arguments), enumerating every input *is* a proof — and it handles undef
and floating point uniformly because it just runs the interpreter.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple

from repro.ir.function import Function
from repro.ir.types import FloatType, IntType, PointerType, Type, VectorType
from repro.semantics.domain import RuntimeValue
from repro.semantics.eval import FunctionRunner
from repro.semantics.memory import Memory
from repro.verify.testing import Counterexample, outcome_refines

#: Float values that stand in for "all floats" in exhaustive mode; with
#: these the check is no longer a proof, so FP functions report
#: "validated" rather than "proved" (see refinement driver).
FLOAT_SAMPLE = (0.0, -0.0, 1.0, -1.0, 0.5, 255.0,
                float("inf"), float("-inf"), float("nan"))


def input_space_bits(function: Function) -> Optional[int]:
    """Total quantified input bits, or None when not enumerable
    (pointers/memory make the space too large)."""
    total = 0
    for argument in function.arguments:
        type_ = argument.type
        if isinstance(type_, PointerType):
            return None
        if isinstance(type_, VectorType):
            if isinstance(type_.element, FloatType):
                total += 4 * type_.count   # sampled, not exhaustive
            elif isinstance(type_.element, IntType):
                total += type_.element.bits * type_.count
            else:
                return None
        elif isinstance(type_, IntType):
            total += type_.bits
        elif isinstance(type_, FloatType):
            total += 4                     # sampled
        else:
            return None
    return total


def _has_float(function: Function) -> bool:
    def type_has_float(type_: Type) -> bool:
        scalar = type_.scalar_type()
        return isinstance(scalar, FloatType)
    return any(type_has_float(a.type) for a in function.arguments)


def _lane_values(scalar: Type) -> List:
    if isinstance(scalar, IntType):
        return list(range(1 << scalar.bits))
    if isinstance(scalar, FloatType):
        return list(FLOAT_SAMPLE)
    raise AssertionError(f"unexpected scalar {scalar}")


def _arg_values(type_: Type) -> List[RuntimeValue]:
    if isinstance(type_, VectorType):
        lanes = _lane_values(type_.element)
        return [list(combo) for combo in
                itertools.product(lanes, repeat=type_.count)]
    return _lane_values(type_)


def check_exhaustive(source: Function, target: Function,
                     max_bits: int = 16
                     ) -> Tuple[Optional[str], Optional[Counterexample]]:
    """Enumerate the full input space.

    Returns (status, counterexample): status is ``"proved"`` (all inputs
    pass, integer-only), ``"validated"`` (all pass but floats were
    sampled), ``"refuted"``, or None when the space is too large.
    """
    bits = input_space_bits(source)
    if bits is None or bits > max_bits:
        return None, None
    arg_types = [a.type for a in source.arguments]
    pools = [_arg_values(type_) for type_ in arg_types]
    sampled = _has_float(source)
    # Compile the straight-line evaluation plan once per check, not once
    # per enumerated input (never cached across calls: opt can rewrite
    # functions in place between checks).
    run_source = FunctionRunner(source).run
    run_target = FunctionRunner(target).run
    for combo in itertools.product(*pools):
        args = list(combo)
        src_outcome = run_source(list(args), memory=Memory())
        tgt_outcome = run_target(list(args), memory=Memory())
        ok, reason = outcome_refines(src_outcome, tgt_outcome)
        if not ok:
            return "refuted", Counterexample(
                args=args,
                arg_types=arg_types,
                source_outcome=src_outcome,
                target_outcome=tgt_outcome,
                kind=reason)
    return ("validated" if sampled else "proved"), None
