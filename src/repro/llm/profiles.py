"""Capability profiles of the evaluated models (Table 1 + calibration).

Each profile carries the paper's Table 1 metadata (version, reasoning,
knowledge cut-off) plus the behavioural parameters of the simulation:

* ``skills`` — per-category strength in [0, 1]; combined with an issue's
  difficulty this yields the probability the model produces the right
  rewrite on one try;
* ``syntax_error_rate`` — chance a correct answer is emitted with broken
  syntax (the failure mode of Figure 3b);
* ``hallucination_rate`` — chance an incapable model emits a confident,
  wrong rewrite instead of giving up;
* ``repair_rate`` / ``feedback_boost`` — how well the model exploits
  ``opt`` errors and Alive2 counterexamples on the retry (this is what
  separates LPO from LPO−);
* latency/cost — the serving model for RQ3.

The numbers are calibrated so the RQ1 matrix reproduces Table 2's
ordering: Gemma3 ≪ Llama3.3 ≈ Gemini2.0 ≈ GPT-4.1 < o4-mini ≲ Gemini2.0T.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class ModelProfile:
    """Static description + simulation parameters for one model."""

    name: str
    version: str
    reasoning: bool
    cutoff: str
    skills: Dict[str, float]
    syntax_error_rate: float
    hallucination_rate: float
    repair_rate: float
    feedback_boost: float
    mean_latency_seconds: float
    latency_jitter: float
    usd_per_million_input: float
    usd_per_million_output: float
    local: bool = False

    def skill_strength(self, skill: str) -> float:
        return self.skills.get(skill, 0.0)


def _skills(**kwargs: float) -> Dict[str, float]:
    base = {"logic": 0.0, "bit-tricks": 0.0, "icmp-range": 0.0,
            "minmax": 0.0, "select-idioms": 0.0, "fp": 0.0,
            "memory": 0.0, "vector": 0.0, "flags": 0.0}
    base.update(kwargs)
    return base


GEMMA3 = ModelProfile(
    name="Gemma3", version="gemma3:27b", reasoning=False, cutoff="08/2024",
    skills=_skills(logic=0.10, **{"bit-tricks": 0.06}),
    syntax_error_rate=0.35, hallucination_rate=0.40,
    repair_rate=0.50, feedback_boost=1.2,
    mean_latency_seconds=9.0, latency_jitter=0.3,
    usd_per_million_input=0.0, usd_per_million_output=0.0, local=True)

LLAMA33 = ModelProfile(
    name="Llama3.3", version="llama3.3:70b", reasoning=False,
    cutoff="12/2023",
    skills=_skills(logic=0.47, **{"bit-tricks": 0.31},
                   **{"icmp-range": 0.19}, minmax=0.14,
                   **{"select-idioms": 0.22}, flags=0.14),
    syntax_error_rate=0.26, hallucination_rate=0.22,
    repair_rate=0.68, feedback_boost=1.3,
    mean_latency_seconds=11.5, latency_jitter=0.25,
    usd_per_million_input=0.0, usd_per_million_output=0.0, local=True)

GEMINI20 = ModelProfile(
    name="Gemini2.0", version="gemini-2.0-flash", reasoning=False,
    cutoff="08/2024",
    skills=_skills(logic=0.46, **{"bit-tricks": 0.33},
                   **{"icmp-range": 0.25}, minmax=0.23,
                   **{"select-idioms": 0.25}, flags=0.19, fp=0.07),
    syntax_error_rate=0.22, hallucination_rate=0.20,
    repair_rate=0.75, feedback_boost=1.4,
    mean_latency_seconds=2.6, latency_jitter=0.3,
    usd_per_million_input=0.10, usd_per_million_output=0.40)

GEMINI20T = ModelProfile(
    name="Gemini2.0T", version="gemini-2.0-flash-thinking-exp-01-21",
    reasoning=True, cutoff="08/2024",
    skills=_skills(logic=0.84, **{"bit-tricks": 0.76},
                   **{"icmp-range": 0.74}, minmax=0.61,
                   **{"select-idioms": 0.67}, flags=0.51, fp=0.73,
                   memory=0.45, vector=0.28),
    syntax_error_rate=0.33, hallucination_rate=0.10,
    repair_rate=0.95, feedback_boost=1.7,
    mean_latency_seconds=7.5, latency_jitter=0.35,
    usd_per_million_input=0.10, usd_per_million_output=0.40)

GPT41 = ModelProfile(
    name="GPT-4.1", version="gpt-4.1-2025-04-14", reasoning=False,
    cutoff="06/2024",
    skills=_skills(logic=0.51, **{"bit-tricks": 0.39},
                   **{"icmp-range": 0.31}, minmax=0.26,
                   **{"select-idioms": 0.31}, flags=0.22, fp=0.42,
                   memory=0.14),
    syntax_error_rate=0.68, hallucination_rate=0.25,
    repair_rate=0.78, feedback_boost=1.6,
    mean_latency_seconds=4.8, latency_jitter=0.3,
    usd_per_million_input=2.00, usd_per_million_output=8.00)

O4MINI = ModelProfile(
    name="o4-mini", version="o4-mini-2025-04-16", reasoning=True,
    cutoff="06/2024",
    skills=_skills(logic=0.78, **{"bit-tricks": 0.70},
                   **{"icmp-range": 0.67}, minmax=0.54,
                   **{"select-idioms": 0.60}, flags=0.45, fp=0.61,
                   memory=0.47, vector=0.23),
    syntax_error_rate=0.30, hallucination_rate=0.10,
    repair_rate=0.88, feedback_boost=1.6,
    mean_latency_seconds=11.0, latency_jitter=0.4,
    usd_per_million_input=1.10, usd_per_million_output=4.40)

GEMINI25 = ModelProfile(
    name="Gemini2.5", version="gemini-2.5-flash-lite", reasoning=True,
    cutoff="01/2025",
    skills=_skills(logic=0.65, **{"bit-tricks": 0.54},
                   **{"icmp-range": 0.48}, minmax=0.39,
                   **{"select-idioms": 0.45}, flags=0.33, fp=0.37,
                   memory=0.23, vector=0.14),
    syntax_error_rate=0.20, hallucination_rate=0.15,
    repair_rate=0.80, feedback_boost=1.5,
    mean_latency_seconds=2.4, latency_jitter=0.3,
    usd_per_million_input=0.10, usd_per_million_output=0.40)

#: Models used in RQ1 (Gemini2.5 is excluded to avoid data leakage).
RQ1_MODELS: Tuple[ModelProfile, ...] = (
    GEMMA3, LLAMA33, GEMINI20, GEMINI20T, GPT41, O4MINI)

ALL_MODELS: Tuple[ModelProfile, ...] = RQ1_MODELS + (GEMINI25,)

MODELS_BY_NAME: Dict[str, ModelProfile] = {
    profile.name: profile for profile in ALL_MODELS}
