"""Failure-mode injection for the simulated LLM.

Two classes of realistic model failure are reproduced:

* **syntax corruption** — the model knows the right answer but emits it
  in broken IR.  The flagship corruption is the paper's own Figure 3b:
  writing a min/max intrinsic as if it were a bare instruction opcode
  (``%m = smax <4 x i32> %a, %b``);
* **hallucination** — a confident but semantically wrong rewrite
  (swapped min/max direction, dropped guard, off-by-one constant,
  flipped predicate).  These pass the syntax check and get caught by the
  verifier, exercising the counterexample feedback path.
"""

from __future__ import annotations

import random
import re
from typing import Optional

from repro.ir.function import Function
from repro.ir.parser import parse_function
from repro.ir.printer import print_function

_INTRINSIC_CALL_RE = re.compile(
    r"(?:tail )?call [^@]*@llvm\.(umin|umax|smin|smax)\.[a-z0-9]+"
    r"\(([^,]+), ([^)]+)\)")


def corrupt_syntax(ir_text: str, rng: random.Random) -> str:
    """Make the answer syntactically invalid (recognizably LLM-style)."""
    choices = []
    if _INTRINSIC_CALL_RE.search(ir_text):
        choices.append("bare_opcode")
    if " icmp " in ir_text:
        choices.append("cmp_typo")
    choices.append("drop_paren")
    kind = rng.choice(choices)
    if kind == "bare_opcode":
        # Figure 3b: `%x = smax <4 x i32> %a, %b` is not a real opcode.
        def replace(match: re.Match) -> str:
            return (f"{match.group(1)} {match.group(2).strip()},"
                    f" {match.group(3).strip().split(' ')[-1]}")
        return _INTRINSIC_CALL_RE.sub(replace, ir_text, count=1)
    if kind == "cmp_typo":
        return ir_text.replace(" icmp ", " cmp ", 1)
    # Drop a closing parenthesis from the first call, or mangle `ret`.
    if ")" in ir_text:
        index = ir_text.index(")")
        return ir_text[:index] + ir_text[index + 1:]
    return ir_text.replace("ret ", "return ", 1)


_MINMAX_SWAP = {"umin": "umax", "umax": "umin",
                "smin": "smax", "smax": "smin"}
_PREDICATE_SWAP = {"slt": "sgt", "sgt": "slt", "ult": "ugt", "ugt": "ult",
                   "sle": "sge", "sge": "sle", "ule": "uge", "uge": "ule",
                   "eq": "ne", "ne": "eq"}


def hallucinate(window: Function, rng: random.Random) -> Optional[str]:
    """Produce a plausible but (usually) wrong rewrite of the window.

    Returns rendered IR text, or None when no mutation applies.  The
    result parses and type-checks; only its semantics are off — exactly
    the kind of answer the verifier exists to reject.
    """
    text = print_function(window)
    mutations = []
    for base, swapped in _MINMAX_SWAP.items():
        if f"@llvm.{base}." in text:
            mutations.append(("swap_minmax", base, swapped))
    for pred in _PREDICATE_SWAP:
        if f"icmp {pred} " in text:
            mutations.append(("swap_pred", pred, _PREDICATE_SWAP[pred]))
    constant = re.search(r", (\d\d+)\)?\n", text)
    if constant:
        mutations.append(("tweak_const", constant.group(1),
                          str(int(constant.group(1)) - 1)))
    # Dropping a "redundant-looking" instruction is occasionally *right*
    # (absorption patterns); keep it rare so hallucinations mostly fail.
    if not mutations or rng.random() < 0.2:
        drop = _droppable_line(text)
        if drop is not None:
            mutations.append(("drop_line", drop, ""))
    if not mutations:
        return None
    kind, a, b = mutations[rng.randrange(len(mutations))]
    if kind == "swap_minmax":
        mutated = text.replace(f"@llvm.{a}.", f"@llvm.{b}.", 1)
    elif kind == "swap_pred":
        mutated = text.replace(f"icmp {a} ", f"icmp {b} ", 1)
    elif kind == "tweak_const":
        mutated = text.replace(f", {a}", f", {b}", 1)
    else:
        mutated = a
    try:
        function = parse_function(mutated)
    except Exception:
        return None
    return print_function(function)


def _droppable_line(text: str) -> Optional[str]:
    """Rewire the function to skip one intermediate instruction: the
    classic 'the guard looks redundant' hallucination."""
    lines = text.splitlines()
    # Find an instruction whose result feeds exactly the next line.
    assignments = [(index, line) for index, line in enumerate(lines)
                   if re.match(r"\s+%[\w.]+ = ", line)]
    if len(assignments) < 2:
        return None
    index, line = assignments[len(assignments) // 2]
    name = line.strip().split(" = ")[0]
    operand_match = re.search(r"(%[\w.]+)[,)\s]", line.split(" = ", 1)[1])
    if operand_match is None:
        return None
    replacement = operand_match.group(1)
    if replacement == name:
        return None
    new_lines = []
    for line_index, current in enumerate(lines):
        if line_index == index:
            continue
        if line_index > index:
            current = current.replace(f"{name},", f"{replacement},")
            current = current.replace(f"{name})", f"{replacement})")
            current = current.replace(f"{name}\n", f"{replacement}\n")
            if current.rstrip().endswith(name):
                current = current.replace(name, replacement)
        new_lines.append(current)
    return "\n".join(new_lines) + "\n"
