"""Real provider schemes: ``openai:`` and ``anthropic:`` model specs.

Built on the same transports as ``http(s)://`` specs (the thread pool
or, by default here, the :class:`~repro.llm.aio.AsyncHTTPBackend`
event loop), with per-provider request/response shaping and per-model
$ cost tables feeding :class:`~repro.llm.client.Usage.cost_usd`.

**API keys come from the environment only** — ``OPENAI_API_KEY`` /
``ANTHROPIC_API_KEY``.  A spec string travels far (job digests,
structured logs, ``repro status``, campaign results), so the parser
rejects any key-looking query parameter outright, and the key itself
rides the request *headers* of each call and nothing else.

Spec grammar (every knob optional)::

    openai:gpt-4.1?timeout=30&retries=2&rps=8&transport=aio
    anthropic:claude-sonnet-4-5?concurrency=64

plus ``host=``/``port=``/``insecure=1`` to point a provider scheme at
a different endpoint — which is how the in-repo
:class:`~repro.llm.stub.StubChatServer` tests both shapes offline
(``StubChatServer.provider_spec_for``).

Cost tables are $ per **million** tokens (input, output), matched by
longest model-name prefix; unknown provider models run unpriced, and a
simulated profile name (the stub's models) falls back to the profile's
own rates so offline runs still account spend.
"""

from __future__ import annotations

import os
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import AuthenticationError
from repro.llm.aio import AsyncHTTPBackend
from repro.llm.backends import (
    _HTTP_PARAM_TYPES,
    _HTTP_PARAMS,
    _choose_transport,
    _http_retry_policy,
    _number,
    _parse_params,
    _truthy,
    BackendProtocolError,
    BackendResolutionError,
    CompletionBackend,
    HTTPBackend,
    ParsedBackendSpec,
    register_backend_scheme,
)
from repro.llm.client import LLMResponse, PromptRequest, Usage
from repro.llm.profiles import MODELS_BY_NAME

__all__ = [
    "OpenAIBackend", "AsyncOpenAIBackend",
    "AnthropicBackend", "AsyncAnthropicBackend",
    "OPENAI_COSTS", "ANTHROPIC_COSTS", "cost_rates_for",
]

#: ($ per 1M input tokens, $ per 1M output tokens), longest-prefix
#: matched on the model name.
OPENAI_COSTS: Dict[str, Tuple[float, float]] = {
    "gpt-4.1-mini": (0.40, 1.60),
    "gpt-4.1-nano": (0.10, 0.40),
    "gpt-4.1": (2.00, 8.00),
    "gpt-4o-mini": (0.15, 0.60),
    "gpt-4o": (2.50, 10.00),
    "o3": (2.00, 8.00),
    "o4-mini": (1.10, 4.40),
}

ANTHROPIC_COSTS: Dict[str, Tuple[float, float]] = {
    "claude-opus-4": (15.00, 75.00),
    "claude-sonnet-4": (3.00, 15.00),
    "claude-haiku-4": (1.00, 5.00),
    "claude-3-5-haiku": (0.80, 4.00),
}

#: Anthropic requires an explicit completion cap per request.
_ANTHROPIC_MAX_TOKENS = 4096
_ANTHROPIC_VERSION = "2023-06-01"

_PROVIDER_PARAMS = _HTTP_PARAMS | frozenset({"host", "port",
                                             "insecure"})
_PROVIDER_PARAM_TYPES = dict(_HTTP_PARAM_TYPES, port=int)


def cost_rates_for(model: str,
                   table: Mapping[str, Tuple[float, float]]
                   ) -> Optional[Tuple[float, float]]:
    """The cost table entry for ``model`` (longest-prefix match), a
    simulated profile's own rates for stub-addressed offline runs, or
    ``None`` (unpriced)."""
    best: Optional[Tuple[float, float]] = None
    best_length = -1
    for prefix, rates in table.items():
        if model.startswith(prefix) and len(prefix) > best_length:
            best, best_length = rates, len(prefix)
    if best is not None:
        return best
    profile = MODELS_BY_NAME.get(model)
    if profile is not None:
        return (profile.usd_per_million_input,
                profile.usd_per_million_output)
    return None


class _ProviderMixin:
    """Shared provider plumbing: the env-sourced API key and the spec
    hygiene around it."""

    #: Subclasses name their key's environment variable.
    api_key_env = ""

    def __init__(self, *args, api_key: str = "", **kwargs):
        super().__init__(*args, **kwargs)
        self._api_key = api_key


class _OpenAIShaping(_ProviderMixin):
    """OpenAI chat completions: standard payload (no ``attempt``
    side-channel), ``Authorization: Bearer`` auth."""

    api_key_env = "OPENAI_API_KEY"

    def _request_headers(self) -> Dict[str, str]:
        return {"Authorization": f"Bearer {self._api_key}"}

    def _chat_payload(self, request: PromptRequest) -> dict:
        payload = super()._chat_payload(request)
        # The stub's feedback-replay key is a non-standard field; a
        # real provider's strict validator has no business seeing it.
        payload.pop("attempt", None)
        return payload


class _AnthropicShaping(_ProviderMixin):
    """Anthropic messages API: ``{base}/messages``, top-level
    ``system``, ``x-api-key`` auth, ``input/output_tokens`` usage."""

    api_key_env = "ANTHROPIC_API_KEY"

    @property
    def endpoint(self) -> str:
        return f"{self.base_path}/messages"

    def _request_headers(self) -> Dict[str, str]:
        return {"x-api-key": self._api_key,
                "anthropic-version": _ANTHROPIC_VERSION}

    def _chat_payload(self, request: PromptRequest) -> dict:
        return {
            "model": self.model,
            "max_tokens": _ANTHROPIC_MAX_TOKENS,
            "system": request.system_prompt,
            "messages": [
                {"role": "user", "content": request.user_content()},
            ],
        }

    def _parse_completion(self, body: dict,
                          latency: float) -> LLMResponse:
        try:
            blocks = body["content"]
            text = "".join(block["text"] for block in blocks
                           if isinstance(block, dict)
                           and block.get("type") == "text")
            if not blocks or not isinstance(text, str):
                raise TypeError("content has no text blocks")
            usage = body.get("usage") or {}
            prompt_tokens = int(usage.get("input_tokens", 0))
            completion_tokens = int(usage.get("output_tokens", 0))
        except (KeyError, IndexError, TypeError, ValueError,
                AttributeError) as exc:
            self.stats.record_failure()
            raise BackendProtocolError(
                f"{self.spec}: malformed messages reply "
                f"({exc})") from None
        return LLMResponse(text=text, usage=Usage(
            prompt_tokens=prompt_tokens,
            completion_tokens=completion_tokens,
            latency_seconds=latency,
            cost_usd=self._priced(prompt_tokens, completion_tokens,
                                  0.0),
            calls=1))


class OpenAIBackend(_OpenAIShaping, HTTPBackend):
    """``openai:`` over the thread transport."""


class AsyncOpenAIBackend(_OpenAIShaping, AsyncHTTPBackend):
    """``openai:`` over the asyncio transport (the default)."""


class AnthropicBackend(_AnthropicShaping, HTTPBackend):
    """``anthropic:`` over the thread transport."""


class AsyncAnthropicBackend(_AnthropicShaping, AsyncHTTPBackend):
    """``anthropic:`` over the asyncio transport (the default)."""


def _provider_params(parsed: ParsedBackendSpec) -> Mapping[str, str]:
    """Validate a provider spec's query the way http(s) parsing does —
    plus the hard rule that nothing key-shaped may appear there."""
    text = parsed.text
    for name in parsed.params:
        lowered = name.lower()
        if "key" in lowered or "token" in lowered \
                or "secret" in lowered:
            raise BackendResolutionError(
                f"model spec {text!r} must not carry credentials; "
                f"API keys come from the environment "
                f"(OPENAI_API_KEY / ANTHROPIC_API_KEY), never from "
                f"specs")
    # Re-run the shared parser for the unknown-name and bad-value
    # errors (provider schemes skip validation in parse_backend_spec,
    # which only knows the built-in param tables).
    query = text.partition("?")[2]
    params = _parse_params(query, _PROVIDER_PARAMS, text)
    for key, cast in _PROVIDER_PARAM_TYPES.items():
        _number(params, key, cast, None, text)
    return params


def _require_api_key(env_var: str, scheme: str) -> str:
    key = os.environ.get(env_var, "")
    if not key:
        raise AuthenticationError(
            f"{scheme}: model specs carry no credentials; set the "
            f"{env_var} environment variable")
    return key


def _make_provider(parsed: ParsedBackendSpec, *,
                   scheme: str, default_host: str,
                   thread_cls, aio_cls,
                   costs: Mapping[str, Tuple[float, float]]
                   ) -> CompletionBackend:
    text = parsed.text
    if not parsed.model:
        raise BackendResolutionError(
            f"model spec {text!r} names no model; use "
            f"{scheme}:<model>[?timeout=&retries=&...]")
    params = _provider_params(parsed)
    secure = not ("insecure" in params
                  and _truthy(params["insecure"]))
    host = params.get("host", default_host)
    port = _number(params, "port", int, 443 if secure else 80, text)
    transport = _choose_transport(params, text, default="aio")
    cls = aio_cls if transport == "aio" else thread_cls
    concurrency = _number(params, "concurrency", int,
                          128 if transport == "aio" else 8, text)
    api_key = _require_api_key(cls.api_key_env, scheme)
    return cls(
        host, port, parsed.model, secure=secure, base_path="/v1",
        retry=_http_retry_policy(params, text),
        concurrency=concurrency, spec=text,
        cost_rates=cost_rates_for(parsed.model, costs),
        api_key=api_key)


def _make_openai(parsed: ParsedBackendSpec,
                 seed: int) -> CompletionBackend:
    return _make_provider(
        parsed, scheme="openai", default_host="api.openai.com",
        thread_cls=OpenAIBackend, aio_cls=AsyncOpenAIBackend,
        costs=OPENAI_COSTS)


def _make_anthropic(parsed: ParsedBackendSpec,
                    seed: int) -> CompletionBackend:
    return _make_provider(
        parsed, scheme="anthropic", default_host="api.anthropic.com",
        thread_cls=AnthropicBackend, aio_cls=AsyncAnthropicBackend,
        costs=ANTHROPIC_COSTS)


register_backend_scheme("openai", _make_openai)
register_backend_scheme("anthropic", _make_anthropic)
