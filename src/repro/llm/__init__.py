"""LLM access: model specs, completion backends, and the simulation.

Models are addressed by *spec* strings resolved through one registry
(:func:`resolve_backend` in :mod:`repro.llm.backends`): bare profile
names (``Gemini2.0T``), simulated backends with knobs
(``sim:GPT-4o?seed=7``), and OpenAI-compatible HTTP endpoints
(``http://host:port/model``).  Backends are batch-first
(``complete_many``) with per-backend retry/timeout/rate-limit policy
and unified :class:`Usage` accounting; :class:`SimulatedBackend` wraps
the capability-profiled :class:`SimulatedLLM` bit-identically, and
:class:`StubChatServer` is the in-repo endpoint double for the HTTP
path.
"""

from repro.llm.backends import (
    BackendError,
    BackendProtocolError,
    BackendResolutionError,
    BackendStats,
    BackendTimeoutError,
    CompletionBackend,
    HTTPBackend,
    ParsedBackendSpec,
    RetryPolicy,
    SimulatedBackend,
    known_backend_specs,
    parse_backend_spec,
    register_backend_scheme,
    resolve_backend,
    resolve_client,
)
from repro.llm.client import (
    FEEDBACK_HEADER,
    SYSTEM_PROMPT,
    LLMClient,
    LLMResponse,
    PromptRequest,
    Usage,
    estimate_tokens,
)
from repro.llm.knowledge import (
    KnowledgeBase,
    KnowledgeEntry,
    default_knowledge_base,
)
from repro.llm.profiles import (
    ALL_MODELS,
    GEMINI20,
    GEMINI20T,
    GEMINI25,
    GEMMA3,
    GPT41,
    LLAMA33,
    MODELS_BY_NAME,
    O4MINI,
    RQ1_MODELS,
    ModelProfile,
)
from repro.llm.simulated import SimulatedLLM
from repro.llm.stub import StubChatServer

__all__ = [
    "BackendError", "BackendProtocolError", "BackendResolutionError",
    "BackendStats", "BackendTimeoutError", "CompletionBackend",
    "HTTPBackend", "ParsedBackendSpec", "RetryPolicy",
    "SimulatedBackend", "known_backend_specs", "parse_backend_spec",
    "register_backend_scheme", "resolve_backend", "resolve_client",
    "FEEDBACK_HEADER", "SYSTEM_PROMPT", "LLMClient", "LLMResponse",
    "PromptRequest", "Usage", "estimate_tokens",
    "KnowledgeBase", "KnowledgeEntry", "default_knowledge_base",
    "ALL_MODELS", "GEMINI20", "GEMINI20T", "GEMINI25", "GEMMA3", "GPT41",
    "LLAMA33", "MODELS_BY_NAME", "O4MINI", "RQ1_MODELS", "ModelProfile",
    "SimulatedLLM",
    "StubChatServer",
]
