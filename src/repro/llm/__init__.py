"""LLM clients: the simulated models and their capability profiles."""

from repro.llm.client import (
    SYSTEM_PROMPT,
    LLMClient,
    LLMResponse,
    PromptRequest,
    Usage,
    estimate_tokens,
)
from repro.llm.knowledge import (
    KnowledgeBase,
    KnowledgeEntry,
    default_knowledge_base,
)
from repro.llm.profiles import (
    ALL_MODELS,
    GEMINI20,
    GEMINI20T,
    GEMINI25,
    GEMMA3,
    GPT41,
    LLAMA33,
    MODELS_BY_NAME,
    O4MINI,
    RQ1_MODELS,
    ModelProfile,
)
from repro.llm.simulated import SimulatedLLM

__all__ = [
    "SYSTEM_PROMPT", "LLMClient", "LLMResponse", "PromptRequest", "Usage",
    "estimate_tokens",
    "KnowledgeBase", "KnowledgeEntry", "default_knowledge_base",
    "ALL_MODELS", "GEMINI20", "GEMINI20T", "GEMINI25", "GEMMA3", "GPT41",
    "LLAMA33", "MODELS_BY_NAME", "O4MINI", "RQ1_MODELS", "ModelProfile",
    "SimulatedLLM",
]
