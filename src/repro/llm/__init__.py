"""LLM access: model specs, completion backends, and the simulation.

Models are addressed by *spec* strings resolved through one registry
(:func:`resolve_backend` in :mod:`repro.llm.backends`): bare profile
names (``Gemini2.0T``), simulated backends with knobs
(``sim:GPT-4o?seed=7``), OpenAI-compatible HTTP endpoints
(``http://host:port/model``, thread or ``transport=aio`` asyncio
transport), and real providers (``openai:``/``anthropic:`` — API keys
from env, never in specs).  Backends are batch-first
(``complete_many``) with per-backend retry/timeout/rate-limit policy
and unified :class:`Usage` accounting (including ``cost_usd``);
:class:`SimulatedBackend` wraps the capability-profiled
:class:`SimulatedLLM` bit-identically, and :class:`StubChatServer` is
the in-repo endpoint double for both HTTP wire shapes.

**The client contract is** :class:`CompletionBackend`: batch-first
``complete_many`` plus single-call ``complete`` sugar.  The historical
``LLMClient`` protocol name is deprecated — importing it from this
package warns once and hands back the old class for compatibility.
"""

from repro.llm.aio import AsyncHTTPBackend
from repro.llm.backends import (
    ENV_TRANSPORT,
    BackendError,
    BackendProtocolError,
    BackendResolutionError,
    BackendStats,
    BackendTimeoutError,
    CompletionBackend,
    HTTPBackend,
    ParsedBackendSpec,
    RetryPolicy,
    SimulatedBackend,
    known_backend_specs,
    parse_backend_spec,
    register_backend_scheme,
    resolve_backend,
    resolve_client,
)
from repro.llm.client import (
    FEEDBACK_HEADER,
    SYSTEM_PROMPT,
    LLMResponse,
    PromptRequest,
    Usage,
    estimate_tokens,
)
from repro.llm.knowledge import (
    KnowledgeBase,
    KnowledgeEntry,
    default_knowledge_base,
)
from repro.llm.profiles import (
    ALL_MODELS,
    GEMINI20,
    GEMINI20T,
    GEMINI25,
    GEMMA3,
    GPT41,
    LLAMA33,
    MODELS_BY_NAME,
    O4MINI,
    RQ1_MODELS,
    ModelProfile,
)
from repro.llm.simulated import SimulatedLLM
from repro.llm.stub import StubChatServer

# Importing the providers module registers the openai:/anthropic:
# schemes with the spec registry (same pattern as sim:/http:).
from repro.llm import providers  # noqa: F401  (import for effect)
from repro.llm.providers import (
    AnthropicBackend,
    AsyncAnthropicBackend,
    AsyncOpenAIBackend,
    OpenAIBackend,
)

__all__ = [
    "AsyncHTTPBackend", "ENV_TRANSPORT",
    "BackendError", "BackendProtocolError", "BackendResolutionError",
    "BackendStats", "BackendTimeoutError", "CompletionBackend",
    "HTTPBackend", "ParsedBackendSpec", "RetryPolicy",
    "SimulatedBackend", "known_backend_specs", "parse_backend_spec",
    "register_backend_scheme", "resolve_backend", "resolve_client",
    "FEEDBACK_HEADER", "SYSTEM_PROMPT", "LLMClient", "LLMResponse",
    "PromptRequest", "Usage", "estimate_tokens",
    "KnowledgeBase", "KnowledgeEntry", "default_knowledge_base",
    "ALL_MODELS", "GEMINI20", "GEMINI20T", "GEMINI25", "GEMMA3", "GPT41",
    "LLAMA33", "MODELS_BY_NAME", "O4MINI", "RQ1_MODELS", "ModelProfile",
    "SimulatedLLM",
    "StubChatServer",
    "OpenAIBackend", "AsyncOpenAIBackend",
    "AnthropicBackend", "AsyncAnthropicBackend",
]


def __getattr__(name: str):
    """Deprecation shim: ``repro.llm.LLMClient`` still resolves, but
    warns once per process — :class:`CompletionBackend` is the
    documented integration contract now.  (The warning fires exactly
    once because the resolved class is cached into ``globals()``, so
    later lookups never reach this hook.)"""
    if name == "LLMClient":
        import warnings

        warnings.warn(
            "repro.llm.LLMClient is deprecated; integrate against "
            "repro.llm.CompletionBackend (batch-first complete_many, "
            "with single-shot complete() as sugar) instead",
            DeprecationWarning, stacklevel=2)
        from repro.llm.client import LLMClient

        globals()["LLMClient"] = LLMClient
        return LLMClient
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
