"""An in-repo OpenAI-compatible chat-completions stub server.

:class:`StubChatServer` is the test/benchmark double for a real model
endpoint: it speaks the chat-completions wire shape
(``POST {base}/chat/completions`` with ``model``/``messages``/``seed``)
and serves each request from the matching
:class:`~repro.llm.simulated.SimulatedLLM`, reconstructing the exact
:class:`~repro.llm.client.PromptRequest` from the chat messages plus
the ``seed``/``attempt`` fields the
:class:`~repro.llm.backends.HTTPBackend` sends.  Because the sampling
keys round-trip losslessly, an ``http://host:port/<model>`` backend is
bit-identical to ``sim:<model>`` at the detection level — the
equivalence the backend tests and the service benchmark pin.

The stub also speaks the Anthropic messages shape
(``POST {base}/messages`` with ``system``/``messages`` and
``input_tokens``/``output_tokens`` usage), so the ``openai:`` /
``anthropic:`` provider schemes are offline-testable end to end —
including the rule that API keys ride request *headers* only: the
handler records every auth-ish header it sees (``seen_headers``) and
tests assert the key arrived there and nowhere else.

Observability/fault knobs for tests:

* ``max_in_flight`` records the peak number of concurrently served
  requests (the batching acceptance check);
* ``hold_for_concurrency=N`` parks every request until N are in flight
  (bounded by ``hold_timeout``), making "≥ N in flight" deterministic;
* ``fail_first=N`` answers the first N requests with HTTP 500 so retry
  paths can be exercised end to end;
* ``disconnect_first=N`` kills the connection mid-body (headers sent,
  body truncated) for the first N requests — the mid-stream
  disconnect the async transport must survive;
* ``rate_limit_first=N`` answers the first N requests with HTTP 429
  carrying ``Retry-After: retry_after`` — provider-paced backoff;
* ``header_delay`` stalls before the status line (a slow-header read
  that should trip the client's request timeout);
* ``response_delay`` adds fixed service time per request.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional

from repro.llm.client import PromptRequest
from repro.llm.profiles import MODELS_BY_NAME
from repro.llm.simulated import SimulatedLLM


class _StubState:
    """Shared, lock-protected counters and knobs of one server."""

    def __init__(self, llm_seed: int, hold_for_concurrency: int,
                 hold_timeout: float, fail_first: int,
                 response_delay: float, disconnect_first: int = 0,
                 rate_limit_first: int = 0, retry_after: float = 0.0,
                 header_delay: float = 0.0):
        self.lock = threading.Lock()
        self.cond = threading.Condition(self.lock)
        self.llm_seed = llm_seed
        self.hold_for_concurrency = hold_for_concurrency
        self.hold_timeout = hold_timeout
        self.fail_first = fail_first
        self.response_delay = response_delay
        self.disconnect_first = disconnect_first
        self.rate_limit_first = rate_limit_first
        self.retry_after = retry_after
        self.header_delay = header_delay
        self.in_flight = 0
        self.max_in_flight = 0
        self.requests_served = 0
        self.failures_injected = 0
        self.disconnects_injected = 0
        self.rate_limits_injected = 0
        #: Last-seen value of each auth-ish request header (tests
        #: assert API keys ride headers, never specs/URLs).
        self.seen_headers: Dict[str, str] = {}
        self.llms: Dict[str, SimulatedLLM] = {}

    def llm_for(self, model: str) -> Optional[SimulatedLLM]:
        with self.lock:
            llm = self.llms.get(model)
            if llm is None:
                profile = MODELS_BY_NAME.get(model)
                if profile is None:
                    return None
                llm = SimulatedLLM(profile, seed=self.llm_seed)
                self.llms[model] = llm
            return llm


class _StubHandler(BaseHTTPRequestHandler):
    # Keep-alive matters: the HTTPBackend reuses pooled connections.
    protocol_version = "HTTP/1.1"

    def log_message(self, *args) -> None:  # silence per-request noise
        pass

    @property
    def state(self) -> _StubState:
        return self.server.state  # type: ignore[attr-defined]

    def _reply(self, status: int, payload: dict,
               extra_headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _disconnect(self) -> None:
        """Mid-stream fault: full headers, truncated body, dead
        socket — the client sees EOF inside the response."""
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", "1000")
        self.end_headers()
        self.wfile.write(b'{"choices": [')
        self.wfile.flush()
        self.close_connection = True
        try:
            self.connection.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass

    def _error(self, status: int, message: str) -> None:
        self._reply(status, {"error": {"message": message,
                                       "type": "invalid_request_error"}})

    def do_POST(self) -> None:  # noqa: N802 — http.server contract
        state = self.state
        with state.lock:
            state.in_flight += 1
            state.max_in_flight = max(state.max_in_flight,
                                      state.in_flight)
            state.cond.notify_all()
        try:
            self._serve(state)
        finally:
            with state.lock:
                state.in_flight -= 1
                state.cond.notify_all()

    def _serve(self, state: _StubState) -> None:
        for name in ("authorization", "x-api-key",
                     "anthropic-version"):
            value = self.headers.get(name)
            if value is not None:
                with state.lock:
                    state.seen_headers[name] = value
        if self.path.endswith("/chat/completions"):
            shape = "openai"
        elif self.path.endswith("/messages"):
            shape = "anthropic"
        else:
            self._error(404, f"no such endpoint {self.path!r}")
            return
        if state.header_delay > 0:
            # Stall before the status line: the client is mid
            # "read response head" and its request timeout must fire.
            time.sleep(state.header_delay)
        length = int(self.headers.get("Content-Length", 0))
        try:
            payload = json.loads(self.rfile.read(length))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._error(400, f"bad JSON body: {exc}")
            return
        with state.lock:
            inject_disconnect = (state.disconnects_injected
                                 < state.disconnect_first)
            if inject_disconnect:
                state.disconnects_injected += 1
        if inject_disconnect:
            self._disconnect()
            return
        with state.lock:
            limited = (state.rate_limits_injected
                       < state.rate_limit_first)
            if limited:
                state.rate_limits_injected += 1
        if limited:
            self._reply(
                429,
                {"error": {"message": "injected rate limit",
                           "type": "rate_limit_error"}},
                extra_headers={
                    "Retry-After": f"{state.retry_after:g}"})
            return
        if state.hold_for_concurrency:
            deadline = time.monotonic() + state.hold_timeout
            with state.lock:
                while (state.max_in_flight
                       < state.hold_for_concurrency):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    state.cond.wait(remaining)
        if state.response_delay > 0:
            time.sleep(state.response_delay)
        with state.lock:
            if state.failures_injected < state.fail_first:
                state.failures_injected += 1
                inject = True
            else:
                state.requests_served += 1
                inject = False
        if inject:
            self._error(500, "injected failure (fail_first)")
            return

        model = payload.get("model", "")
        llm = state.llm_for(model)
        if llm is None:
            self._error(404, f"unknown model {model!r}; this stub "
                             f"serves {sorted(MODELS_BY_NAME)}")
            return
        if shape == "anthropic":
            request = _request_from_messages(payload)
        else:
            request = _request_from_chat(payload)
        if request is None:
            self._error(400, "messages must contain a user entry")
            return
        response = llm.complete(request)
        if shape == "anthropic":
            self._reply(200, {
                "id": f"stub-{state.requests_served}",
                "type": "message",
                "role": "assistant",
                "model": model,
                "content": [{"type": "text",
                             "text": response.text}],
                "stop_reason": "end_turn",
                # Anthropic's usage vocabulary — and, like the real
                # API, no price: the client's cost table prices it.
                "usage": {
                    "input_tokens": response.usage.prompt_tokens,
                    "output_tokens":
                        response.usage.completion_tokens,
                },
            })
            return
        self._reply(200, {
            "id": f"stub-{state.requests_served}",
            "object": "chat.completion",
            "model": model,
            "choices": [{
                "index": 0,
                "message": {"role": "assistant",
                            "content": response.text},
                "finish_reason": "stop",
            }],
            "usage": {
                "prompt_tokens": response.usage.prompt_tokens,
                "completion_tokens": response.usage.completion_tokens,
                "total_tokens": (response.usage.prompt_tokens
                                 + response.usage.completion_tokens),
                # Priced server-side from the simulated profile's
                # rates, so http(s) specs keep cost parity with sim:.
                "cost_usd": response.usage.cost_usd,
            },
        })


def _request_from_chat(payload: dict) -> Optional[PromptRequest]:
    """Rebuild the :class:`PromptRequest` the backend serialized."""
    system = ""
    user = None
    for message in payload.get("messages", ()):
        if not isinstance(message, dict):
            continue
        role = message.get("role")
        content = message.get("content", "")
        if role == "system":
            system = content
        elif role == "user":
            user = content
    if user is None:
        return None
    window_ir, feedback = PromptRequest.split_user_content(user)
    kwargs = {}
    if system:
        kwargs["system_prompt"] = system
    return PromptRequest(window_ir=window_ir, feedback=feedback,
                         attempt=int(payload.get("attempt", 0)),
                         round_seed=int(payload.get("seed", 0)),
                         **kwargs)


def _request_from_messages(payload: dict) -> Optional[PromptRequest]:
    """Rebuild a :class:`PromptRequest` from the Anthropic messages
    shape (top-level ``system``, user turns in ``messages``; the API
    has no sampling seed, so simulated sampling keys off seed 0)."""
    user = None
    for message in payload.get("messages", ()):
        if not isinstance(message, dict):
            continue
        if message.get("role") == "user":
            content = message.get("content", "")
            if isinstance(content, list):
                content = "".join(
                    block.get("text", "") for block in content
                    if isinstance(block, dict)
                    and block.get("type") == "text")
            user = content
    if user is None:
        return None
    window_ir, feedback = PromptRequest.split_user_content(user)
    kwargs = {}
    system = payload.get("system", "")
    if system:
        kwargs["system_prompt"] = system
    return PromptRequest(window_ir=window_ir, feedback=feedback,
                         **kwargs)


class _StubServer(ThreadingHTTPServer):
    # A burst of 128 truly simultaneous connects is the point of the
    # asyncio transport; socketserver's default listen backlog of 5
    # drops most of the burst's SYNs and the kernel's retransmit
    # backoff (1s, 2s, 4s, ...) then races every concurrency latch.
    request_queue_size = 256
    daemon_threads = True


class StubChatServer:
    """A background-thread chat-completions server over the simulated
    models (see the module docstring for the knobs)."""

    def __init__(self, llm_seed: int = 0, host: str = "127.0.0.1",
                 port: int = 0, hold_for_concurrency: int = 0,
                 hold_timeout: float = 5.0, fail_first: int = 0,
                 response_delay: float = 0.0,
                 disconnect_first: int = 0,
                 rate_limit_first: int = 0, retry_after: float = 0.0,
                 header_delay: float = 0.0):
        self.host = host
        self._state = _StubState(
            llm_seed=llm_seed,
            hold_for_concurrency=hold_for_concurrency,
            hold_timeout=hold_timeout,
            fail_first=fail_first,
            response_delay=response_delay,
            disconnect_first=disconnect_first,
            rate_limit_first=rate_limit_first,
            retry_after=retry_after,
            header_delay=header_delay)
        self._server = _StubServer((host, port), _StubHandler)
        self._server.state = self._state  # type: ignore[attr-defined]
        self.port = self._server.server_address[1]
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "StubChatServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-llm-stub", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)

    def __enter__(self) -> "StubChatServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- addressing --------------------------------------------------------
    def spec_for(self, model: str, **params) -> str:
        """The ``http://`` model spec addressing ``model`` here, e.g.
        ``spec_for("Gemini2.0T", retries=1, backoff=0.01)``."""
        query = "&".join(f"{key}={value}"
                         for key, value in params.items())
        suffix = f"?{query}" if query else ""
        return f"http://{self.host}:{self.port}/{model}{suffix}"

    def provider_spec_for(self, scheme: str, model: str,
                          **params) -> str:
        """A provider-scheme spec (``openai:``/``anthropic:``)
        addressed at this stub, e.g.
        ``provider_spec_for("openai", "Gemini2.0T", retries=0)``.
        Note what is *not* here: no API key — keys come from env."""
        pieces = [f"host={self.host}", f"port={self.port}",
                  "insecure=1"]
        pieces.extend(f"{key}={value}"
                      for key, value in params.items())
        return f"{scheme}:{model}?" + "&".join(pieces)

    # -- observations ------------------------------------------------------
    @property
    def max_in_flight(self) -> int:
        with self._state.lock:
            return self._state.max_in_flight

    @property
    def requests_served(self) -> int:
        with self._state.lock:
            return self._state.requests_served

    @property
    def failures_injected(self) -> int:
        with self._state.lock:
            return self._state.failures_injected

    @property
    def disconnects_injected(self) -> int:
        with self._state.lock:
            return self._state.disconnects_injected

    @property
    def rate_limits_injected(self) -> int:
        with self._state.lock:
            return self._state.rate_limits_injected

    @property
    def seen_headers(self) -> Dict[str, str]:
        with self._state.lock:
            return dict(self._state.seen_headers)
