"""The rewrite knowledge base behind the simulated LLM.

A real model's "knowledge" of peephole identities is modelled two ways:

* **exact entries** — every issue dataset case contributes
  ``digest(src) → (tgt, skill, difficulty)``; a model that has the skill
  can reproduce the community-known rewrite when it sees the pattern;
* **generalized rules** — the patch registry's rules (which accept any
  constants/widths) let a capable model optimize *variants* of known
  patterns found in the corpus, the way LPO discovered new instances in
  RQ2.

The knowledge base is strictly larger than the stock optimizer's rule
set; the gap between the two is exactly the space of "missed
optimizations" this reproduction can discover.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional, Tuple

from repro.core.dedup import window_digest
from repro.ir.function import Function
from repro.ir.parser import parse_function
from repro.ir.printer import print_function


@dataclass(frozen=True)
class KnowledgeEntry:
    """One known rewrite: the optimal form of a recognized pattern."""

    issue_id: int
    tgt_text: str
    skill: str
    difficulty: float


class KnowledgeBase:
    """Digest-indexed rewrites plus generalized patch rules."""

    def __init__(self) -> None:
        self.exact: Dict[str, KnowledgeEntry] = {}
        self.patch_skills: Dict[int, Tuple[str, float]] = {}

    # -- construction -------------------------------------------------------
    def add_case(self, issue_id: int, src_text: str, tgt_text: str,
                 skill: str, difficulty: float) -> None:
        function = parse_function(src_text)
        digest = window_digest(function)
        self.exact[digest] = KnowledgeEntry(issue_id, tgt_text, skill,
                                            difficulty)
        self.patch_skills[issue_id] = (skill, difficulty)

    # -- lookup ---------------------------------------------------------
    def lookup(self, window: Function) -> Optional[KnowledgeEntry]:
        """Exact structural match against known patterns."""
        return self.exact.get(window_digest(window))

    def lookup_generalized(self, window: Function
                           ) -> Optional[KnowledgeEntry]:
        """Try the generalized patch rules (any constants/widths).

        Returns a synthesized entry whose target is the patched-optimizer
        output when some patch rule improves the window.
        """
        from repro.opt.driver import patch_rules, run_opt
        for info in patch_rules():
            result = run_opt(window, patches=[info])
            if not result.ok or result.function is None:
                continue
            if (result.function.instruction_count()
                    < window.instruction_count()):
                skill, difficulty = self.patch_skills.get(
                    info.issue_id or -1, ("logic", 0.6))
                return KnowledgeEntry(
                    issue_id=info.issue_id or -1,
                    tgt_text=print_function(result.function),
                    skill=skill,
                    difficulty=min(1.0, difficulty + 0.1))
        return None

    def __len__(self) -> int:
        return len(self.exact)


@lru_cache(maxsize=1)
def default_knowledge_base() -> KnowledgeBase:
    """The KB over both issue datasets (built once per process)."""
    from repro.corpus.issues import rq1_cases
    from repro.corpus.issues_rq2 import rq2_cases
    kb = KnowledgeBase()
    for case in rq1_cases() + rq2_cases():
        kb.add_case(case.issue_id, case.src, case.tgt, case.skill,
                    case.difficulty)
    return kb
