"""LLM request/response currency, prompt rendering, usage accounting.

:class:`LLMClient` is the minimal single-call protocol the pipeline is
written against; :mod:`repro.llm.backends` layers the batch-first
:class:`~repro.llm.backends.CompletionBackend` API (URI-addressed
backends, retries, rate-limit pacing) on top of the same
:class:`PromptRequest` / :class:`LLMResponse` / :class:`Usage` types,
so both surfaces share one accounting currency.  :class:`Usage`
supports ``+`` / ``+=`` so aggregation sites can sum usages without
mutating through helper calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Tuple

SYSTEM_PROMPT = (
    "If the provided instruction sequence is suboptimal, output the "
    "optimal and correct implementation. If the result is incorrect, "
    "revise it based on the provided feedback.")

#: Header introducing the feedback section of a prompt.  Both the
#: renderer and the wire parser (the HTTP backend's stub server) key
#: off this exact line, so a chat message round-trips losslessly.
FEEDBACK_HEADER = "Feedback from the previous attempt:"


@dataclass
class PromptRequest:
    """One optimization request sent to the model.

    ``feedback`` carries the ``opt`` error message or Alive2
    counterexample from the previous attempt (empty on the first try);
    ``round_seed`` keys the simulated model's nondeterminism so repeated
    experiment rounds differ the way real sampling does.
    """

    window_ir: str
    feedback: str = ""
    attempt: int = 0
    round_seed: int = 0
    system_prompt: str = SYSTEM_PROMPT

    def user_content(self) -> str:
        """The user-message body: the window IR plus, on retries, the
        feedback section.  This is what an HTTP backend sends as the
        chat ``user`` message; :meth:`split_user_content` inverts it."""
        parts = [self.window_ir]
        if self.feedback:
            parts += ["", FEEDBACK_HEADER, self.feedback]
        return "\n".join(parts)

    @staticmethod
    def split_user_content(content: str) -> Tuple[str, str]:
        """Invert :meth:`user_content`: ``(window_ir, feedback)``."""
        marker = f"\n\n{FEEDBACK_HEADER}\n"
        window_ir, sep, feedback = content.partition(marker)
        if not sep:
            return content, ""
        return window_ir, feedback

    def render(self) -> str:
        """The full prompt text (used for token accounting)."""
        return "\n".join([self.system_prompt, "", self.user_content()])


@dataclass
class Usage:
    """Token/latency/cost accounting for one or more calls.

    Usages form a monoid: ``a + b`` is a new summed :class:`Usage` and
    ``total += call`` accumulates in place, so aggregation loops read
    like arithmetic (``sum(usages, Usage())`` works too).
    """

    prompt_tokens: int = 0
    completion_tokens: int = 0
    latency_seconds: float = 0.0
    cost_usd: float = 0.0
    calls: int = 0

    def __add__(self, other: "Usage") -> "Usage":
        if not isinstance(other, Usage):
            return NotImplemented
        return Usage(
            prompt_tokens=self.prompt_tokens + other.prompt_tokens,
            completion_tokens=(self.completion_tokens
                               + other.completion_tokens),
            latency_seconds=(self.latency_seconds
                             + other.latency_seconds),
            cost_usd=self.cost_usd + other.cost_usd,
            calls=self.calls + other.calls)

    def __iadd__(self, other: "Usage") -> "Usage":
        if not isinstance(other, Usage):
            return NotImplemented
        self.prompt_tokens += other.prompt_tokens
        self.completion_tokens += other.completion_tokens
        self.latency_seconds += other.latency_seconds
        self.cost_usd += other.cost_usd
        self.calls += other.calls
        return self

    def add(self, other: "Usage") -> None:
        """Legacy mutating aggregation; prefer ``total += other``."""
        self.__iadd__(other)


@dataclass
class LLMResponse:
    """A model completion plus its accounting."""

    text: str
    usage: Usage = field(default_factory=Usage)

    def extract_ir(self) -> str:
        """The answer's IR: the first fenced code block when the model
        used markdown, the whole completion otherwise.

        The fence may appear anywhere — models often prefix prose
        ("Here is the optimized IR: ```…```") — and an unterminated
        fence (a truncated completion) yields everything after the
        opener.  Text on the opening-fence line (a language tag like
        ``llvm``) is discarded.
        """
        text = self.text
        search_from = 0
        while True:
            open_index = text.find("```", search_from)
            if open_index == -1:
                return text.strip() + "\n"
            line_end = text.find("\n", open_index + 3)
            close_index = text.find("```", open_index + 3)
            if (close_index != -1
                    and (line_end == -1 or close_index < line_end)):
                # ```…``` closed on the opener's own line is an
                # inline code span, not a block; keep looking.
                search_from = close_index + 3
                continue
            if line_end == -1:
                # A fence opening at the very end has no body.
                return text.strip() + "\n"
            # The rest of the opener's line is a language tag, not IR.
            body = text[line_end + 1:
                        close_index if close_index != -1
                        else len(text)]
            body = body.strip()
            if body:
                return body + "\n"
            return text.strip() + "\n"


class LLMClient(Protocol):
    """Anything that can answer optimization prompts."""

    @property
    def model_name(self) -> str: ...

    def complete(self, request: PromptRequest) -> LLMResponse: ...


def estimate_tokens(text: str) -> int:
    """The standard ~4 characters/token heuristic."""
    return max(1, len(text) // 4)
