"""LLM client protocol, prompt rendering and usage accounting.

The pipeline is written against :class:`LLMClient`; the offline
environment provides :class:`~repro.llm.simulated.SimulatedLLM`, and a
real deployment would drop in an API-backed client with the same
interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol

SYSTEM_PROMPT = (
    "If the provided instruction sequence is suboptimal, output the "
    "optimal and correct implementation. If the result is incorrect, "
    "revise it based on the provided feedback.")


@dataclass
class PromptRequest:
    """One optimization request sent to the model.

    ``feedback`` carries the ``opt`` error message or Alive2
    counterexample from the previous attempt (empty on the first try);
    ``round_seed`` keys the simulated model's nondeterminism so repeated
    experiment rounds differ the way real sampling does.
    """

    window_ir: str
    feedback: str = ""
    attempt: int = 0
    round_seed: int = 0
    system_prompt: str = SYSTEM_PROMPT

    def render(self) -> str:
        """The full prompt text (used for token accounting)."""
        parts = [self.system_prompt, "", self.window_ir]
        if self.feedback:
            parts += ["", "Feedback from the previous attempt:",
                      self.feedback]
        return "\n".join(parts)


@dataclass
class Usage:
    """Token/latency/cost accounting for one or more calls."""

    prompt_tokens: int = 0
    completion_tokens: int = 0
    latency_seconds: float = 0.0
    cost_usd: float = 0.0
    calls: int = 0

    def add(self, other: "Usage") -> None:
        self.prompt_tokens += other.prompt_tokens
        self.completion_tokens += other.completion_tokens
        self.latency_seconds += other.latency_seconds
        self.cost_usd += other.cost_usd
        self.calls += other.calls


@dataclass
class LLMResponse:
    """A model completion plus its accounting."""

    text: str
    usage: Usage = field(default_factory=Usage)

    def extract_ir(self) -> str:
        """Strip markdown fences if the model wrapped its answer."""
        text = self.text.strip()
        if text.startswith("```"):
            lines = text.splitlines()
            body = []
            inside = False
            for line in lines:
                if line.startswith("```"):
                    inside = not inside
                    continue
                if inside:
                    body.append(line)
            if body:
                return "\n".join(body).strip() + "\n"
        return text + "\n"


class LLMClient(Protocol):
    """Anything that can answer optimization prompts."""

    @property
    def model_name(self) -> str: ...

    def complete(self, request: PromptRequest) -> LLMResponse: ...


def estimate_tokens(text: str) -> int:
    """The standard ~4 characters/token heuristic."""
    return max(1, len(text) // 4)
