"""Asyncio chat-completions transport behind the synchronous API.

The thread-pool :class:`~repro.llm.backends.HTTPBackend` tops out at
``concurrency`` OS threads (~8 requests in flight); an LLM wire that
serves thousands of concurrent users needs hundreds.
:class:`AsyncHTTPBackend` keeps the **same synchronous
``complete_many`` contract** — pipeline wavefronts, service workers,
and mesh shards call it unchanged — while the transport underneath is
a private asyncio event loop in one dedicated daemon thread:

* each request is a coroutine bounded by one :class:`asyncio.Semaphore`
  (default 128 in flight, vs 8 threads);
* connections are raw ``asyncio.open_connection`` streams speaking
  HTTP/1.1 with keep-alive, pooled per backend;
* per-request timeouts ride :func:`asyncio.wait_for`; the
  :class:`~repro.llm.backends.RetryPolicy` backoff schedule is driven
  by ``asyncio.sleep`` (plus ``Retry-After`` on 429s — a courtesy the
  thread transport never paid);
* rate-limit pacing reuses the deterministic
  :class:`~repro.llm.backends._Pacer` slot bookkeeping, with the wait
  itself awaited on the loop instead of blocking a thread.

Select it with ``transport=aio`` on any ``http(s)://`` model spec, or
process-wide with ``REPRO_LLM_TRANSPORT=aio``.  ``close()`` cancels
in-flight work, closes every pooled stream, and joins the loop thread
— no leaked sockets or threads (the async failure-mode tests run under
``-W error::ResourceWarning``).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import threading
from typing import Dict, List, Optional, Tuple

from repro.llm.backends import (
    BackendError,
    BackendProtocolError,
    BackendTimeoutError,
    HTTPBackend,
    _Pacer,
)
from repro.llm.client import LLMResponse, PromptRequest

__all__ = ["AsyncHTTPBackend"]

#: Default in-flight bound — the whole point of the transport: 16x the
#: thread pool's 8, still one OS thread.
DEFAULT_AIO_CONCURRENCY = 128


def _no_sleep(_seconds: float) -> None:
    """Pacer sleep stub: the slot delay is awaited on the loop instead
    (module-level so the backend stays picklable)."""


def _retry_after_seconds(headers: Dict[str, str]) -> float:
    """A 429's ``Retry-After`` in seconds (0 when absent/unparseable;
    HTTP-date form is ignored — providers we care about send deltas)."""
    raw = headers.get("retry-after", "")
    try:
        return max(0.0, float(raw))
    except ValueError:
        return 0.0


class AsyncHTTPBackend(HTTPBackend):
    """:class:`HTTPBackend` with the transport swapped for asyncio.

    The event loop lives in a private daemon thread created lazily on
    first use (and rebuilt after ``close()`` or a pickle hop, exactly
    like the thread transport's pool/executor).  ``complete_many``
    submits one batch coroutine with
    :func:`asyncio.run_coroutine_threadsafe` and blocks the caller —
    the synchronous contract every existing call-site relies on.
    """

    def __init__(self, *args, **kwargs):
        kwargs.setdefault("concurrency", DEFAULT_AIO_CONCURRENCY)
        super().__init__(*args, **kwargs)
        # The slot math stays deterministic and thread-safe; the delay
        # it returns is awaited (see _complete_one_async) rather than
        # slept, so a paced burst never blocks the loop thread.
        self._pacer = _Pacer(self.retry.requests_per_second,
                             clock=self._clock, sleep=_no_sleep)
        self._aio_sleep = asyncio.sleep
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        #: Idle keep-alive streams; touched only from the loop thread,
        #: so a plain list needs no lock.
        self._aio_idle: List[Tuple[asyncio.StreamReader,
                                   asyncio.StreamWriter]] = []
        self._semaphore: Optional[asyncio.Semaphore] = None

    # -- the loop thread ---------------------------------------------------
    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        with self._state_lock:
            if self._loop is None:
                loop = asyncio.new_event_loop()
                thread = threading.Thread(target=loop.run_forever,
                                          name="repro-aio", daemon=True)
                thread.start()
                self._loop = loop
                self._loop_thread = thread
            return self._loop

    def _complete_batch(self, requests: List[PromptRequest]
                        ) -> List[LLMResponse]:
        if not requests:
            return []
        loop = self._ensure_loop()
        future = asyncio.run_coroutine_threadsafe(
            self._run_batch(list(requests)), loop)
        try:
            return future.result()
        except concurrent.futures.CancelledError:
            raise BackendError(
                f"{self.spec}: backend closed during "
                f"complete_many") from None

    def _complete_one(self, request: PromptRequest) -> LLMResponse:
        return self._complete_batch([request])[0]

    async def _run_batch(self, requests: List[PromptRequest]
                         ) -> List[LLMResponse]:
        if self._semaphore is None:
            self._semaphore = asyncio.Semaphore(self.concurrency)

        async def bounded(request: PromptRequest) -> LLMResponse:
            async with self._semaphore:
                return await self._complete_one_async(request)

        # return_exceptions keeps every sibling running to completion
        # (or cancellation) — no orphaned tasks to leak connections —
        # then the first failure in *request order* is re-raised, the
        # same first-error surface as the thread transport.
        results = await asyncio.gather(
            *(bounded(request) for request in requests),
            return_exceptions=True)
        for result in results:
            if isinstance(result, BaseException):
                raise result
        return list(results)

    # -- one request, with retries -----------------------------------------
    async def _complete_one_async(self, request: PromptRequest
                                  ) -> LLMResponse:
        policy = self.retry
        payload = self._chat_payload(request)
        failure: Optional[BackendError] = None
        server_delay = 0.0
        for try_index in range(policy.max_retries + 1):
            if try_index:
                self.stats.record_retry()
                delay = max(policy.backoff(try_index - 1), server_delay)
                if delay > 0:
                    await self._aio_sleep(delay)
            server_delay = 0.0
            waited = self._pacer.wait()
            if waited > 0:
                self.stats.record_rate_limit_wait(waited)
                await self._aio_sleep(waited)
            started = self._clock()
            try:
                timeout = policy.timeout_seconds or None
                status, body, headers = await asyncio.wait_for(
                    self._post_async(payload), timeout=timeout)
            except (asyncio.TimeoutError, TimeoutError) as exc:
                failure = BackendTimeoutError(
                    f"{self.spec}: request timed out after "
                    f"{policy.timeout_seconds}s ({exc or 'timeout'})")
                continue
            except (OSError, EOFError) as exc:
                failure = BackendError(
                    f"{self.spec}: transport error: {exc}")
                continue
            if status == 200:
                return self._parse_completion(
                    body, latency=self._clock() - started)
            message = self._error_message(body, status)
            if status == 429 or status >= 500:
                failure = BackendError(
                    f"{self.spec}: retryable HTTP {status}: {message}")
                if status == 429:
                    server_delay = _retry_after_seconds(headers)
                continue
            self.stats.record_failure()
            raise BackendError(
                f"{self.spec}: HTTP {status}: {message}")
        self.stats.record_failure()
        assert failure is not None
        raise failure

    # -- HTTP/1.1 over streams ---------------------------------------------
    async def _post_async(self, payload: dict
                          ) -> Tuple[int, dict, Dict[str, str]]:
        if self._transport is not None:
            # Injected test transports keep working here too; they may
            # return (status, body) or (status, body, headers).
            result = self._transport(payload)
            if len(result) == 2:
                status, body = result
                return status, body, {}
            return result
        body = json.dumps(payload).encode("utf-8")
        reader, writer = await self._acquire_stream()
        reusable = False
        try:
            headers = {"Host": f"{self.host}:{self.port}",
                       "Content-Type": "application/json",
                       "Accept": "application/json",
                       "Content-Length": str(len(body))}
            headers.update(self._request_headers())
            head = (f"POST {self.endpoint} HTTP/1.1\r\n"
                    + "".join(f"{name}: {value}\r\n"
                              for name, value in headers.items())
                    + "\r\n").encode("latin-1")
            writer.write(head + body)
            await writer.drain()
            status, reply_headers = await self._read_head(reader)
            data = await self._read_body(reader, reply_headers)
            reusable = (reply_headers.get("connection", "").lower()
                        != "close")
        finally:
            self._release_stream(reader, writer, reusable)
        try:
            parsed = json.loads(data.decode("utf-8")) if data else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            parsed = {"error": {"message": data[:200].decode(
                "utf-8", "replace")}}
        if not isinstance(parsed, dict):
            parsed = {"error": {"message": "non-object response body"}}
        return status, parsed, reply_headers

    async def _read_head(self, reader: asyncio.StreamReader
                         ) -> Tuple[int, Dict[str, str]]:
        line = await reader.readline()
        if not line:
            # Mid-stream disconnect before any status line: retryable
            # transport trouble, not a protocol violation.
            raise ConnectionResetError("server closed the connection")
        parts = line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise BackendProtocolError(
                f"{self.spec}: malformed status line "
                f"{line[:80]!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line:
                raise ConnectionResetError(
                    "connection closed inside response headers")
            if line in (b"\r\n", b"\n"):
                return status, headers
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

    async def _read_body(self, reader: asyncio.StreamReader,
                         headers: Dict[str, str]) -> bytes:
        length = headers.get("content-length")
        if length is not None:
            try:
                return await reader.readexactly(int(length))
            except asyncio.IncompleteReadError as exc:
                raise ConnectionResetError(
                    f"connection closed mid-body ({len(exc.partial)} "
                    f"of {length} bytes)") from None
        if headers.get("transfer-encoding", "").lower() == "chunked":
            chunks: List[bytes] = []
            while True:
                size_line = await reader.readline()
                try:
                    size = int(size_line.split(b";")[0].strip() or b"0",
                               16)
                except ValueError:
                    raise BackendProtocolError(
                        f"{self.spec}: bad chunk size "
                        f"{size_line[:40]!r}") from None
                if size == 0:
                    await reader.readline()
                    return b"".join(chunks)
                chunks.append(await reader.readexactly(size))
                await reader.readexactly(2)
        return await reader.read()

    # -- the stream pool (loop thread only) --------------------------------
    async def _acquire_stream(self) -> Tuple[asyncio.StreamReader,
                                             asyncio.StreamWriter]:
        while self._aio_idle:
            reader, writer = self._aio_idle.pop()
            if writer.is_closing():
                continue
            return reader, writer
        ssl_context = None
        if self.secure:
            import ssl
            ssl_context = ssl.create_default_context()
        return await asyncio.open_connection(self.host, self.port,
                                             ssl=ssl_context)

    def _release_stream(self, reader: asyncio.StreamReader,
                        writer: asyncio.StreamWriter,
                        reusable: bool) -> None:
        if (reusable and not writer.is_closing()
                and len(self._aio_idle) < self.concurrency):
            self._aio_idle.append((reader, writer))
            return
        writer.close()

    # -- shutdown ----------------------------------------------------------
    async def _shutdown_async(self) -> None:
        current = asyncio.current_task()
        tasks = [task for task in asyncio.all_tasks()
                 if task is not current]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        idle, self._aio_idle = self._aio_idle, []
        for _reader, writer in idle:
            writer.close()
        for _reader, writer in idle:
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass
        # Streams closed by cancelled tasks finish closing in later
        # loop iterations; drain a few so no transport outlives the
        # loop (keeps -W error::ResourceWarning green).
        for _ in range(3):
            await asyncio.sleep(0)

    def close(self) -> None:
        with self._state_lock:
            loop, self._loop = self._loop, None
            thread, self._loop_thread = self._loop_thread, None
            self._semaphore = None
        if loop is None:
            return
        try:
            future = asyncio.run_coroutine_threadsafe(
                self._shutdown_async(), loop)
            future.result(timeout=5.0)
        except (concurrent.futures.TimeoutError, RuntimeError):
            pass
        loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join(timeout=5.0)
        loop.close()

    # Loop, thread, streams, and semaphore are all loop-affine; like
    # the thread transport's pool/executor they never cross a pickle
    # boundary and are rebuilt lazily on the other side.
    def __getstate__(self) -> dict:
        state = super().__getstate__()
        for key in ("_loop", "_loop_thread", "_aio_idle", "_semaphore",
                    "_aio_sleep"):
            state.pop(key, None)
        return state

    def __setstate__(self, state: dict) -> None:
        super().__setstate__(state)
        self._aio_sleep = asyncio.sleep
        self._loop = None
        self._loop_thread = None
        self._aio_idle = []
        self._semaphore = None
