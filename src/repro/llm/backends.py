"""Pluggable completion backends: URI-addressed, batch-first LLM access.

This module is the **one model-resolution path** of the repo: every
consumer of a model — the CLI, the experiment runners, the pipeline's
batch driver, and the service's worker pool — turns a *model spec*
string into a :class:`CompletionBackend` through :func:`resolve_backend`
and never touches ``MODELS_BY_NAME`` directly.

Model specs
===========

* ``Gemini2.0T``                — a bare profile name (sugar for
  ``sim:Gemini2.0T``);
* ``sim:GPT-4o?seed=7``         — the simulated model, with optional
  per-backend sampling-seed / ``generalized=0`` overrides;
* ``http://host:port/Model``    — an OpenAI-compatible
  chat-completions endpoint (``https://`` likewise).  The final path
  segment names the model; any prefix becomes the API base path
  (default ``/v1``), so ``http://host:8000/v1/llama`` posts to
  ``/v1/chat/completions`` with ``model="llama"``.  Query parameters
  tune the transport: ``timeout``, ``retries``, ``backoff``,
  ``backoff_multiplier``, ``max_backoff``, ``rps`` (rate-limit pacing),
  ``concurrency`` (in-flight request cap / connection-pool size), and
  ``transport`` (``thread``: the default pool of ~8 OS threads;
  ``aio``: the :class:`~repro.llm.aio.AsyncHTTPBackend` event-loop
  transport holding hundreds in flight).  ``REPRO_LLM_TRANSPORT``
  changes the default process-wide, like ``REPRO_EXECUTOR_BACKEND``
  does for the executor layer;
* ``openai:gpt-4.1`` / ``anthropic:claude-sonnet-4-5`` — real
  provider endpoints (see :mod:`repro.llm.providers`).  API keys come
  from ``OPENAI_API_KEY`` / ``ANTHROPIC_API_KEY`` env vars only —
  never from specs, and they never appear in digests or logs.

New schemes register through :func:`register_backend_scheme`.

The backend API
===============

:class:`CompletionBackend` is batch-first — ``complete_many(requests)``
returns one :class:`~repro.llm.client.LLMResponse` per request, in
order — and still satisfies the classic
:class:`~repro.llm.client.LLMClient` protocol (``complete`` /
``model_name``), so a backend drops into :class:`LPOPipeline`
unchanged.  Each backend owns a :class:`RetryPolicy` (bounded retries
with a *deterministic* backoff schedule, a request timeout surfaced as
:class:`BackendTimeoutError`, and optional requests-per-second pacing)
and a thread-safe :class:`BackendStats` with unified
:class:`~repro.llm.client.Usage` accounting.

:class:`SimulatedBackend` is the reference backend — a thin wrapper
over :class:`~repro.llm.simulated.SimulatedLLM` with **bit-identical**
responses.  :class:`HTTPBackend` fans a batch over a keep-alive
connection pool so many requests are in flight at once; the in-repo
:class:`~repro.llm.stub.StubChatServer` speaks the matching wire shape
for tests and benchmarks.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)
from urllib.parse import parse_qsl, urlsplit

from repro.errors import (
    BackendError,
    BackendTimeoutError,
    ReproError,
)
from repro.llm.client import LLMResponse, PromptRequest, Usage
from repro.llm.knowledge import KnowledgeBase
from repro.llm.profiles import MODELS_BY_NAME, ModelProfile
from repro.llm.simulated import SimulatedLLM

# BackendError / BackendTimeoutError moved to repro.errors (the one
# client-facing taxonomy, stable .code attributes); re-exported here so
# historical `from repro.llm.backends import BackendError` keeps
# working.
__all__ = [
    "BackendError", "BackendTimeoutError", "BackendProtocolError",
    "BackendResolutionError", "RetryPolicy", "BackendStats",
    "CompletionBackend", "SimulatedBackend", "HTTPBackend",
    "ParsedBackendSpec", "register_backend_scheme",
    "known_backend_specs", "parse_backend_spec", "resolve_backend",
    "resolve_client", "ENV_TRANSPORT",
]


class BackendProtocolError(BackendError):
    """The endpoint answered with an out-of-contract payload."""


class BackendResolutionError(ReproError):
    """A model spec that names no resolvable backend."""


# -- retry / pacing --------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with a deterministic backoff schedule.

    The schedule is geometric and *unjittered* on purpose: reproduction
    runs must behave identically across hosts (a real deployment would
    add jitter).  ``requests_per_second`` paces every outbound request
    (retries included) so a burst of ``complete_many`` calls cannot
    trip a provider's rate limit; ``0`` disables pacing.
    """

    max_retries: int = 2
    backoff_seconds: float = 0.1
    backoff_multiplier: float = 2.0
    max_backoff_seconds: float = 2.0
    timeout_seconds: float = 30.0
    requests_per_second: float = 0.0

    def backoff(self, retry_index: int) -> float:
        """Delay before retry ``retry_index`` (0-based), capped."""
        delay = (self.backoff_seconds
                 * (self.backoff_multiplier ** retry_index))
        return min(delay, self.max_backoff_seconds)

    def schedule(self) -> Tuple[float, ...]:
        """The full deterministic backoff schedule, one delay per
        permitted retry."""
        return tuple(self.backoff(index)
                     for index in range(self.max_retries))


class _Pacer:
    """Global request spacing: at most ``requests_per_second`` calls
    enter the wire per second, across all of a backend's threads.

    Slots are handed out under a lock (deterministic ordering per
    arrival); the sleep happens outside it so waiting callers don't
    serialize each other further.
    """

    def __init__(self, requests_per_second: float,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep):
        self._interval = (1.0 / requests_per_second
                          if requests_per_second > 0 else 0.0)
        self._clock = clock
        self._sleep = sleep
        self._lock = threading.Lock()
        self._next_slot: Optional[float] = None

    def wait(self) -> float:
        """Block until this caller's slot; returns the delay paid."""
        if not self._interval:
            return 0.0
        with self._lock:
            now = self._clock()
            slot = (now if self._next_slot is None
                    else max(now, self._next_slot))
            self._next_slot = slot + self._interval
            delay = slot - now
        if delay > 0:
            self._sleep(delay)
        return delay

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


# -- accounting ------------------------------------------------------------
class BackendStats:
    """Thread-safe per-backend accounting.

    ``usage`` is the unified :class:`~repro.llm.client.Usage` sum over
    every completed call; retries/failures/rate-limit waits count the
    transport work around them.  The service scrapes :meth:`snapshot`
    into :class:`~repro.service.metrics.ServiceMetrics`.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.usage = Usage()
        self.retries = 0
        self.failures = 0
        self.rate_limit_waits = 0
        self.rate_limit_wait_seconds = 0.0

    @property
    def calls(self) -> int:
        return self.usage.calls

    @property
    def latency_seconds(self) -> float:
        return self.usage.latency_seconds

    def record_response(self, usage: Usage) -> None:
        with self._lock:
            self.usage += usage

    def record_retry(self) -> None:
        with self._lock:
            self.retries += 1

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1

    def record_rate_limit_wait(self, seconds: float) -> None:
        with self._lock:
            self.rate_limit_waits += 1
            self.rate_limit_wait_seconds += seconds

    def snapshot(self) -> dict:
        """A JSON-safe copy of the counters."""
        with self._lock:
            return {
                "calls": self.usage.calls,
                "retries": self.retries,
                "failures": self.failures,
                "rate_limit_waits": self.rate_limit_waits,
                "latency_seconds": round(self.usage.latency_seconds, 6),
                "cost_usd": round(self.usage.cost_usd, 6),
            }

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


# -- the backend API -------------------------------------------------------
class CompletionBackend:
    """Batch-first access to one model.

    Subclasses implement :meth:`_complete_one` (and may override
    :meth:`_complete_batch` for real concurrency); the base class keeps
    the :class:`BackendStats` accounting uniform.  Every backend also
    satisfies the classic single-call
    :class:`~repro.llm.client.LLMClient` protocol.
    """

    def __init__(self, spec: str,
                 retry: Optional[RetryPolicy] = None):
        self.spec = spec
        self.retry = retry if retry is not None else RetryPolicy()
        self.stats = BackendStats()

    @property
    def model_name(self) -> str:
        raise NotImplementedError

    def complete(self, request: PromptRequest) -> LLMResponse:
        """One request (the :class:`LLMClient` surface)."""
        return self.complete_many([request])[0]

    def complete_many(self, requests: Sequence[PromptRequest]
                      ) -> List[LLMResponse]:
        """One response per request, in request order."""
        requests = list(requests)
        responses = self._complete_batch(requests)
        if len(responses) != len(requests):
            raise BackendError(
                f"{self.spec}: backend returned {len(responses)} "
                f"responses for {len(requests)} requests")
        for response in responses:
            self.stats.record_response(response.usage)
        return responses

    def _complete_batch(self, requests: List[PromptRequest]
                        ) -> List[LLMResponse]:
        return [self._complete_one(request) for request in requests]

    def _complete_one(self, request: PromptRequest) -> LLMResponse:
        raise NotImplementedError

    def close(self) -> None:
        """Release transport resources (idempotent)."""

    def __enter__(self) -> "CompletionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SimulatedBackend(CompletionBackend):
    """The reference backend: :class:`SimulatedLLM` behind the batch
    API, with bit-identical responses (tests pin this)."""

    def __init__(self, profile: ModelProfile, seed: int = 0,
                 knowledge: Optional[KnowledgeBase] = None,
                 enable_generalized: bool = True,
                 retry: Optional[RetryPolicy] = None,
                 spec: Optional[str] = None):
        if spec is None:
            spec = (f"sim:{profile.name}?seed={seed}" if seed
                    else f"sim:{profile.name}")
        super().__init__(spec, retry=retry)
        self.profile = profile
        self.seed = seed
        self._inner = SimulatedLLM(
            profile, knowledge=knowledge, seed=seed,
            enable_generalized=enable_generalized)

    @property
    def model_name(self) -> str:
        return self._inner.model_name

    def _complete_one(self, request: PromptRequest) -> LLMResponse:
        # The whole point: nothing between the request and SimulatedLLM.
        return self._inner.complete(request)


class _ConnectionPool:
    """A LIFO pool of keep-alive :mod:`http.client` connections."""

    def __init__(self, host: str, port: int, secure: bool,
                 timeout: float, size: int):
        self._host = host
        self._port = port
        self._secure = secure
        self._timeout = timeout
        self._size = max(1, size)
        self._lock = threading.Lock()
        self._idle: List[http.client.HTTPConnection] = []

    def _connect(self) -> http.client.HTTPConnection:
        factory = (http.client.HTTPSConnection if self._secure
                   else http.client.HTTPConnection)
        return factory(self._host, self._port, timeout=self._timeout)

    def acquire(self) -> http.client.HTTPConnection:
        with self._lock:
            if self._idle:
                return self._idle.pop()
        return self._connect()

    def release(self, conn: http.client.HTTPConnection,
                reusable: bool) -> None:
        if not reusable:
            conn.close()
            return
        with self._lock:
            if len(self._idle) < self._size:
                self._idle.append(conn)
                return
        conn.close()

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()


class HTTPBackend(CompletionBackend):
    """An OpenAI-compatible chat-completions endpoint.

    ``complete_many`` fans the batch over a thread pool bounded by
    ``concurrency`` so that many requests are in flight at once on a
    keep-alive connection pool of the same size.  Each request carries
    the prompt as chat ``messages`` plus ``seed`` (the round seed) and
    ``attempt`` — the simulated stub replays them for bit-identical
    sampling; a real provider honours ``seed`` and ignores ``attempt``.

    Per-request behaviour is governed by the :class:`RetryPolicy`:
    429/5xx/transport errors retry on the deterministic backoff
    schedule, timeouts surface as :class:`BackendTimeoutError` once
    retries are exhausted, and other 4xx responses fail fast.
    """

    def __init__(self, host: str, port: int, model: str,
                 secure: bool = False, base_path: str = "/v1",
                 retry: Optional[RetryPolicy] = None,
                 concurrency: int = 8,
                 spec: Optional[str] = None,
                 transport: Optional[Callable[[dict],
                                              Tuple[int, dict]]] = None,
                 cost_rates: Optional[Tuple[float, float]] = None,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep):
        scheme = "https" if secure else "http"
        if spec is None:
            spec = f"{scheme}://{host}:{port}/{model}"
        super().__init__(spec, retry=retry)
        self.host = host
        self.port = port
        self.model = model
        self.secure = secure
        self.base_path = "/" + base_path.strip("/") if base_path else ""
        self.concurrency = max(1, int(concurrency))
        #: ($ per million input tokens, $ per million output tokens);
        #: used when the endpoint doesn't price its own replies.
        self.cost_rates = cost_rates
        self._transport = transport
        self._clock = clock
        self._sleep = sleep
        self._pacer = _Pacer(self.retry.requests_per_second,
                             clock=clock, sleep=sleep)
        self._state_lock = threading.Lock()
        self._pool: Optional[_ConnectionPool] = None
        self._executor: Optional[ThreadPoolExecutor] = None

    @property
    def model_name(self) -> str:
        return self.model

    @property
    def endpoint(self) -> str:
        return f"{self.base_path}/chat/completions"

    # -- transport ---------------------------------------------------------
    def _ensure_pool(self) -> _ConnectionPool:
        with self._state_lock:
            if self._pool is None:
                self._pool = _ConnectionPool(
                    self.host, self.port, self.secure,
                    timeout=self.retry.timeout_seconds,
                    size=self.concurrency)
            return self._pool

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._state_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.concurrency,
                    thread_name_prefix="repro-http")
            return self._executor

    def _post_payload(self, payload: dict) -> Tuple[int, dict]:
        if self._transport is not None:
            return self._transport(payload)
        body = json.dumps(payload).encode("utf-8")
        pool = self._ensure_pool()
        conn = pool.acquire()
        reusable = False
        headers = {"Content-Type": "application/json",
                   "Accept": "application/json"}
        headers.update(self._request_headers())
        try:
            conn.request("POST", self.endpoint, body=body,
                         headers=headers)
            response = conn.getresponse()
            data = response.read()
            reusable = not response.will_close
            status = response.status
        finally:
            pool.release(conn, reusable)
        try:
            parsed = json.loads(data.decode("utf-8")) if data else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            parsed = {"error": {"message": data[:200].decode(
                "utf-8", "replace")}}
        if not isinstance(parsed, dict):
            parsed = {"error": {"message": "non-object response body"}}
        return status, parsed

    # -- wire shape --------------------------------------------------------
    def _request_headers(self) -> Dict[str, str]:
        """Extra per-request HTTP headers.  Provider subclasses put
        API-key auth here — keys ride request headers *only*, never
        the spec string (which lands in digests, logs, and status)."""
        return {}

    def _priced(self, prompt_tokens: int, completion_tokens: int,
                reported: float) -> float:
        """A reply's $ cost: the endpoint's own figure when it sends
        one, else this backend's per-model rate table."""
        if reported or self.cost_rates is None:
            return reported
        rate_in, rate_out = self.cost_rates
        return (prompt_tokens * rate_in
                + completion_tokens * rate_out) / 1e6

    def _chat_payload(self, request: PromptRequest) -> dict:
        return {
            "model": self.model,
            "messages": [
                {"role": "system", "content": request.system_prompt},
                {"role": "user", "content": request.user_content()},
            ],
            "temperature": 0,
            "seed": request.round_seed,
            # Non-standard, ignored by real providers: lets the stub
            # key its feedback-repair sampling exactly like the
            # in-process simulation.
            "attempt": request.attempt,
        }

    def _parse_completion(self, body: dict,
                          latency: float) -> LLMResponse:
        try:
            choices = body["choices"]
            text = choices[0]["message"]["content"]
            if not isinstance(text, str):
                raise TypeError("content is not a string")
            usage = body.get("usage") or {}
            prompt_tokens = int(usage.get("prompt_tokens", 0))
            completion_tokens = int(usage.get("completion_tokens", 0))
            parsed_usage = Usage(
                prompt_tokens=prompt_tokens,
                completion_tokens=completion_tokens,
                latency_seconds=latency,
                cost_usd=self._priced(
                    prompt_tokens, completion_tokens,
                    float(usage.get("cost_usd", 0.0))),
                calls=1)
        except (KeyError, IndexError, TypeError, ValueError,
                AttributeError) as exc:
            self.stats.record_failure()
            raise BackendProtocolError(
                f"{self.spec}: malformed chat completion "
                f"({exc})") from None
        return LLMResponse(text=text, usage=parsed_usage)

    @staticmethod
    def _error_message(body: dict, status: int) -> str:
        error = body.get("error")
        if isinstance(error, dict) and error.get("message"):
            return str(error["message"])
        return f"HTTP {status}"

    # -- completion --------------------------------------------------------
    def _complete_one(self, request: PromptRequest) -> LLMResponse:
        policy = self.retry
        payload = self._chat_payload(request)
        failure: Optional[BackendError] = None
        for try_index in range(policy.max_retries + 1):
            if try_index:
                self.stats.record_retry()
                delay = policy.backoff(try_index - 1)
                if delay > 0:
                    self._sleep(delay)
            waited = self._pacer.wait()
            if waited > 0:
                self.stats.record_rate_limit_wait(waited)
            started = self._clock()
            try:
                status, body = self._post_payload(payload)
            except TimeoutError as exc:
                failure = BackendTimeoutError(
                    f"{self.spec}: request timed out after "
                    f"{policy.timeout_seconds}s ({exc or 'timeout'})")
                continue
            except (OSError, http.client.HTTPException) as exc:
                failure = BackendError(
                    f"{self.spec}: transport error: {exc}")
                continue
            if status == 200:
                return self._parse_completion(
                    body, latency=self._clock() - started)
            message = self._error_message(body, status)
            if status == 429 or status >= 500:
                failure = BackendError(
                    f"{self.spec}: retryable HTTP {status}: {message}")
                continue
            self.stats.record_failure()
            raise BackendError(f"{self.spec}: HTTP {status}: {message}")
        self.stats.record_failure()
        assert failure is not None
        raise failure

    def _complete_batch(self, requests: List[PromptRequest]
                        ) -> List[LLMResponse]:
        if len(requests) <= 1:
            return [self._complete_one(request)
                    for request in requests]
        executor = self._ensure_executor()
        futures = [executor.submit(self._complete_one, request)
                   for request in requests]
        return [future.result() for future in futures]

    def close(self) -> None:
        with self._state_lock:
            executor, self._executor = self._executor, None
            pool, self._pool = self._pool, None
        if executor is not None:
            executor.shutdown(wait=False)
        if pool is not None:
            pool.close()

    # Executors/sockets must not cross a pickle boundary (the process
    # scheduler ships the client once per worker); they are rebuilt
    # lazily on first use in the worker.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_state_lock"], state["_pool"], state["_executor"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._state_lock = threading.Lock()
        self._pool = None
        self._executor = None


# -- spec parsing and the registry -----------------------------------------
@dataclass(frozen=True)
class ParsedBackendSpec:
    """A model spec split into its addressing parts (pre-construction,
    so callers can validate without building a backend)."""

    scheme: str
    model: str
    params: Mapping[str, str] = field(default_factory=dict)
    host: str = ""
    port: int = 0
    secure: bool = False
    base_path: str = ""
    text: str = ""


#: Registered scheme -> factory(parsed, default_seed) -> backend.
_SCHEMES: Dict[str, Callable[[ParsedBackendSpec, int],
                             CompletionBackend]] = {}

#: Typed parameters per built-in scheme (``generalized`` is a flag and
#: accepts any truthy/falsy string).  Parsing validates values with
#: these casts so preflight rejection matches construction exactly.
_SIM_PARAM_TYPES: Dict[str, Callable] = {"seed": int}
_SIM_PARAMS = frozenset({"seed", "generalized"})

#: Process-wide default transport for http(s) specs (and the provider
#: schemes built on them): "thread" or "aio" — same idea as
#: REPRO_EXECUTOR_BACKEND for the executor layer.
ENV_TRANSPORT = "REPRO_LLM_TRANSPORT"


def _transport_name(raw: str) -> str:
    """Validate-and-normalize a transport choice (a _number cast, so
    ``?transport=bogus`` is rejected at parse time like any other bad
    parameter value)."""
    name = raw.strip().lower()
    if name not in ("thread", "aio"):
        raise ValueError(name)
    return name


_HTTP_PARAM_TYPES: Dict[str, Callable] = {
    "timeout": float, "retries": int, "backoff": float,
    "backoff_multiplier": float, "max_backoff": float, "rps": float,
    "concurrency": int, "transport": _transport_name}
_HTTP_PARAMS = frozenset(_HTTP_PARAM_TYPES)


def register_backend_scheme(
        scheme: str,
        factory: Callable[[ParsedBackendSpec, int],
                          CompletionBackend]) -> None:
    """Add (or replace) a backend scheme, e.g. a future real API
    client: ``register_backend_scheme("openai", make_openai)`` makes
    ``openai:gpt-4.1?...`` resolvable everywhere at once."""
    if not scheme or not scheme.replace("+", "").isalnum():
        raise ValueError(f"bad scheme name {scheme!r}")
    _SCHEMES[scheme.lower()] = factory


def known_backend_specs() -> str:
    """The one-line spec help used by every resolution error."""
    names = ", ".join(sorted(MODELS_BY_NAME))
    extra = sorted(set(_SCHEMES) - {"sim", "http", "https"})
    extra_text = ("".join(f", {scheme}:<model>" for scheme in extra)
                  if extra else "")
    return (f"known specs: bare profile names ({names}), "
            f"sim:<name>[?seed=N], "
            f"http(s)://host:port/<model>[?timeout=&retries=&rps=...]"
            f"{extra_text}")


def _parse_params(query: str, allowed: Optional[frozenset],
                  text: str) -> Dict[str, str]:
    params = dict(parse_qsl(query, keep_blank_values=True))
    if allowed is not None:
        unknown = sorted(set(params) - allowed)
        if unknown:
            raise BackendResolutionError(
                f"unknown parameter(s) {', '.join(unknown)} in model "
                f"spec {text!r}; allowed: {', '.join(sorted(allowed))}")
    return params


def _number(params: Mapping[str, str], key: str, cast, default,
            text: str):
    raw = params.get(key)
    if raw is None:
        return default
    try:
        return cast(raw)
    except ValueError:
        raise BackendResolutionError(
            f"bad {key}={raw!r} in model spec {text!r}") from None


def _check_param_values(params: Mapping[str, str],
                        types: Mapping[str, Callable],
                        text: str) -> None:
    """Reject unparseable parameter *values* at parse time, so the
    preflight paths (CLI validation, service startup, campaign specs)
    fail exactly where construction would."""
    for key, cast in types.items():
        _number(params, key, cast, None, text)


def parse_backend_spec(spec: str) -> ParsedBackendSpec:
    """Split and validate a model spec without constructing a backend.

    Raises :class:`BackendResolutionError` for an unknown scheme, an
    unknown simulated model, a malformed URL, or unknown parameters —
    the same error construction would raise, so the service and CLI
    can reject bad specs before any work is queued.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise BackendResolutionError(
            f"empty model spec; {known_backend_specs()}")
    text = spec.strip()
    if "://" in text:
        parts = urlsplit(text)
        scheme = parts.scheme.lower()
        if scheme not in _SCHEMES:
            raise BackendResolutionError(
                f"unknown backend scheme {scheme!r} in {text!r}; "
                f"{known_backend_specs()}")
        if not parts.hostname:
            raise BackendResolutionError(
                f"model spec {text!r} has no host")
        segments = [piece for piece in parts.path.split("/") if piece]
        if not segments:
            raise BackendResolutionError(
                f"model spec {text!r} names no model; use "
                f"{scheme}://host:port/<model>")
        model = segments[-1]
        base = "/".join(segments[:-1])
        params = _parse_params(parts.query, _HTTP_PARAMS, text)
        _check_param_values(params, _HTTP_PARAM_TYPES, text)
        try:
            port = parts.port
        except ValueError:
            raise BackendResolutionError(
                f"bad port in model spec {text!r}") from None
        if port is None:
            port = 443 if scheme == "https" else 80
        return ParsedBackendSpec(
            scheme=scheme, model=model, params=params,
            host=parts.hostname, port=port,
            secure=scheme == "https",
            base_path=base or "v1", text=text)
    head, _, query = text.partition("?")
    scheme, sep, model = head.partition(":")
    if not sep:
        scheme, model = "sim", head
    scheme = scheme.lower()
    if scheme not in _SCHEMES:
        raise BackendResolutionError(
            f"unknown backend scheme {scheme!r} in {text!r}; "
            f"{known_backend_specs()}")
    if scheme == "sim":
        if not model:
            raise BackendResolutionError(
                f"model spec {text!r} names no model; "
                f"{known_backend_specs()}")
        if model not in MODELS_BY_NAME:
            raise BackendResolutionError(
                f"unknown model {model!r}; choose from "
                f"{sorted(MODELS_BY_NAME)} (or a sim:/http:// spec — "
                f"{known_backend_specs()})")
        params = _parse_params(query, _SIM_PARAMS, text)
        _check_param_values(params, _SIM_PARAM_TYPES, text)
    else:
        params = _parse_params(query, None, text)
    return ParsedBackendSpec(scheme=scheme, model=model, params=params,
                             text=text)


def resolve_backend(spec: str, seed: int = 0) -> CompletionBackend:
    """The single model-resolution path: spec string in, backend out.

    ``seed`` is the caller's default sampling seed (the service's
    ``llm_seed``, an experiment's config seed); a ``?seed=`` parameter
    in the spec wins over it.  Raises
    :class:`BackendResolutionError` on anything unresolvable.
    """
    parsed = parse_backend_spec(spec)
    return _SCHEMES[parsed.scheme](parsed, seed)


def resolve_client(model, seed: int = 0) -> CompletionBackend:
    """Resolve a spec string *or* wrap a :class:`ModelProfile`.

    Experiment configs carry profile objects; registered profiles
    route through :func:`resolve_backend` (keeping the registry the
    one path for named models) while ad-hoc profiles are wrapped
    directly."""
    if isinstance(model, ModelProfile):
        if MODELS_BY_NAME.get(model.name) is model:
            return resolve_backend(model.name, seed=seed)
        return SimulatedBackend(model, seed=seed)
    return resolve_backend(model, seed=seed)


def _truthy(raw: str) -> bool:
    return raw.strip().lower() not in ("0", "false", "no", "off")


def _make_simulated(parsed: ParsedBackendSpec,
                    seed: int) -> CompletionBackend:
    profile = MODELS_BY_NAME[parsed.model]
    chosen = _number(parsed.params, "seed", int, seed, parsed.text)
    generalized = _truthy(parsed.params.get("generalized", "1"))
    return SimulatedBackend(profile, seed=chosen,
                            enable_generalized=generalized,
                            spec=parsed.text)


def _http_retry_policy(params: Mapping[str, str],
                       text: str) -> RetryPolicy:
    return RetryPolicy(
        max_retries=_number(params, "retries", int, 2, text),
        backoff_seconds=_number(params, "backoff", float, 0.1, text),
        backoff_multiplier=_number(params, "backoff_multiplier", float,
                                   2.0, text),
        max_backoff_seconds=_number(params, "max_backoff", float, 2.0,
                                    text),
        timeout_seconds=_number(params, "timeout", float, 30.0, text),
        requests_per_second=_number(params, "rps", float, 0.0, text))


def _choose_transport(params: Mapping[str, str], text: str,
                      default: str = "thread") -> str:
    """``?transport=`` wins, then ``REPRO_LLM_TRANSPORT``, then the
    scheme's default."""
    chosen = _number(params, "transport", _transport_name, None, text)
    if chosen is not None:
        return chosen
    raw = os.environ.get(ENV_TRANSPORT, "").strip()
    if not raw:
        return default
    try:
        return _transport_name(raw)
    except ValueError:
        raise BackendResolutionError(
            f"bad {ENV_TRANSPORT}={raw!r}; choose thread or "
            f"aio") from None


def _http_backend_class(transport: str):
    """The backend class for a transport name (aio imported lazily —
    it imports from this module)."""
    if transport == "aio":
        from repro.llm.aio import AsyncHTTPBackend
        return AsyncHTTPBackend
    return HTTPBackend


def _make_http(parsed: ParsedBackendSpec,
               seed: int) -> CompletionBackend:
    params = parsed.params
    text = parsed.text
    transport = _choose_transport(params, text)
    cls = _http_backend_class(transport)
    # The aio transport's whole point is depth: default 128 in flight
    # (DEFAULT_AIO_CONCURRENCY) vs the thread pool's 8.
    concurrency = _number(params, "concurrency", int,
                          128 if transport == "aio" else 8, text)
    return cls(
        parsed.host, parsed.port, parsed.model, secure=parsed.secure,
        base_path=parsed.base_path,
        retry=_http_retry_policy(params, text),
        concurrency=concurrency, spec=text)


register_backend_scheme("sim", _make_simulated)
register_backend_scheme("http", _make_http)
register_backend_scheme("https", _make_http)
