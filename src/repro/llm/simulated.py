"""The simulated LLM: a capability-profiled stand-in for model APIs.

Most callers reach it through the backend registry
(``resolve_backend("sim:<name>")`` in :mod:`repro.llm.backends` wraps
it as the bit-identical :class:`~repro.llm.backends.SimulatedBackend`);
the in-repo :class:`~repro.llm.stub.StubChatServer` serves the same
simulation over the OpenAI-compatible HTTP wire shape.

Determinism: every behavioural draw is keyed by (model, window digest,
round seed, purpose), so an experiment round is exactly reproducible
while distinct rounds vary the way temperature sampling does — this is
what produces the 1-5 "times detected" spread of Table 2.

The simulation exercises every pipeline path a real model would:

* correct rewrites (knowledge base hit + capability gate passed),
* correct-but-broken-syntax answers → ``opt`` error feedback → repair,
* hallucinated rewrites → Alive2 counterexample feedback → second try,
* honest "no improvement" answers (echo the input).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Optional

from repro.errors import ParseError
from repro.ir.function import Function
from repro.ir.parser import parse_function
from repro.ir.printer import print_function
from repro.core.dedup import window_digest
from repro.llm.client import (
    LLMResponse,
    PromptRequest,
    Usage,
    estimate_tokens,
)
from repro.llm.corruption import corrupt_syntax, hallucinate
from repro.llm.knowledge import KnowledgeBase, default_knowledge_base
from repro.llm.profiles import ModelProfile


class SimulatedLLM:
    """An :class:`~repro.llm.client.LLMClient` driven by a profile."""

    def __init__(self, profile: ModelProfile,
                 knowledge: Optional[KnowledgeBase] = None,
                 seed: int = 0,
                 enable_generalized: bool = True):
        self.profile = profile
        self.knowledge = (knowledge if knowledge is not None
                          else default_knowledge_base())
        self.seed = seed
        self.enable_generalized = enable_generalized
        self._generalized_cache: Dict[str, Optional[object]] = {}

    @property
    def model_name(self) -> str:
        return self.profile.name

    # -- randomness ----------------------------------------------------------
    def _rng(self, digest: str, round_seed: int, purpose: str,
             attempt: int = 0) -> random.Random:
        payload = (f"{self.profile.name}|{digest}|{self.seed}|"
                   f"{round_seed}|{purpose}|{attempt}")
        value = int.from_bytes(
            hashlib.sha256(payload.encode()).digest()[:8], "big")
        return random.Random(value)

    # -- main entry ----------------------------------------------------------
    def complete(self, request: PromptRequest) -> LLMResponse:
        window_text = request.window_ir
        try:
            window = parse_function(window_text)
        except ParseError:
            return self._respond(request, window_text, thinking=0.2)
        digest = window_digest(window)
        entry = self._find_entry(window, digest)
        answer = self._decide(request, window, digest, entry)
        return self._respond(request, answer,
                             thinking=1.0 if self.profile.reasoning else 0.0)

    # -- knowledge ----------------------------------------------------------
    def _find_entry(self, window: Function, digest: str):
        entry = self.knowledge.lookup(window)
        if entry is not None:
            return entry
        if not self.enable_generalized:
            return None
        if digest not in self._generalized_cache:
            self._generalized_cache[digest] = (
                self.knowledge.lookup_generalized(window))
        return self._generalized_cache[digest]

    #: Sharpness of the capability sigmoid.  High values make detection
    #: bimodal per issue (mostly 5/5 or 0/5 over rounds), which is the
    #: distribution Table 2 shows for the real models.
    CAPABILITY_SHARPNESS = 12.0

    def _success_probability(self, entry) -> float:
        import math
        strength = self.profile.skill_strength(entry.skill)
        if strength <= 0.0:
            return 0.0
        margin = strength - entry.difficulty
        probability = 1.0 / (1.0 + math.exp(
            -self.CAPABILITY_SHARPNESS * margin))
        return min(probability, 0.97)

    # -- behaviour ----------------------------------------------------------
    def _decide(self, request: PromptRequest, window: Function,
                digest: str, entry) -> str:
        profile = self.profile
        round_seed = request.round_seed
        echo = print_function(window)
        knows = False
        if entry is not None:
            gate = self._rng(digest, round_seed, "know").random()
            knows = gate < self._success_probability(entry)

        feedback = request.feedback
        is_syntax_feedback = feedback.startswith("error:")
        is_cex_feedback = "Transformation doesn't verify" in feedback

        if is_syntax_feedback:
            # The previous answer was right but malformed; a capable
            # model fixes it from the opt diagnostic.
            repair_roll = self._rng(digest, round_seed, "repair",
                                    request.attempt).random()
            if knows and entry is not None and (
                    repair_roll < profile.repair_rate):
                return entry.tgt_text
            if entry is not None and knows:
                rng = self._rng(digest, round_seed, "resyntax",
                                request.attempt)
                return corrupt_syntax(entry.tgt_text, rng)
            return echo

        if is_cex_feedback:
            # The counterexample tells the model its rewrite was wrong;
            # with a boost it may now produce the correct one.
            retry_roll = self._rng(digest, round_seed, "cex",
                                   request.attempt).random()
            if entry is not None:
                boosted = min(0.97, self._success_probability(entry)
                              * profile.feedback_boost)
                if retry_roll < boosted:
                    return entry.tgt_text
            return echo

        # First attempt.
        if knows and entry is not None:
            syntax_roll = self._rng(digest, round_seed, "syntax").random()
            if syntax_roll < profile.syntax_error_rate:
                rng = self._rng(digest, round_seed, "corrupt")
                return corrupt_syntax(entry.tgt_text, rng)
            return entry.tgt_text
        hallucination_roll = self._rng(digest, round_seed,
                                       "hallucinate").random()
        if hallucination_roll < profile.hallucination_rate:
            rng = self._rng(digest, round_seed, "mutate")
            mutated = hallucinate(window, rng)
            if mutated is not None:
                return mutated
        return echo

    # -- accounting ----------------------------------------------------------
    def _respond(self, request: PromptRequest, text: str,
                 thinking: float) -> LLMResponse:
        profile = self.profile
        # Keyed via the stable sha256 helper: built-in hash() is salted
        # per process and would jitter modelled latency/cost across runs.
        rng = self._rng(str(len(text)), request.round_seed, "respond",
                        request.attempt)
        jitter = 1.0 + profile.latency_jitter * (rng.random() * 2 - 1)
        latency = profile.mean_latency_seconds * jitter
        if thinking:
            latency *= 1.0 + 0.5 * thinking
        fence_roll = rng.random()
        rendered = text
        if fence_roll < 0.3:
            rendered = f"```llvm\n{text.rstrip()}\n```"
        prompt_tokens = estimate_tokens(request.render())
        completion_tokens = estimate_tokens(rendered)
        if thinking:
            completion_tokens += 256  # low reasoning budget (paper: 1024 max)
        cost = (prompt_tokens * profile.usd_per_million_input
                + completion_tokens * profile.usd_per_million_output) / 1e6
        usage = Usage(prompt_tokens=prompt_tokens,
                      completion_tokens=completion_tokens,
                      latency_seconds=latency,
                      cost_usd=cost,
                      calls=1)
        return LLMResponse(text=rendered, usage=usage)
