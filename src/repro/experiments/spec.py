"""Figure 5: runtime effect of the fixed patches on SPEC CPU2017 Integer.

The paper's finding is a *negative result*: no patch moves the geomean
outside the ±2% noise band, and neither does a whole year of LLVM
development.  We reproduce the experiment's structure with a workload
performance model: each SPEC benchmark's runtime is dominated by memory
and control behaviour; a peephole patch removes a few instructions from
the small fraction of hot code that contains its pattern, producing a
real-but-tiny speedup which measurement noise (modelled per the paper's
median-of-three protocol) swamps.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.scheduler import BatchScheduler
from repro.experiments.tables import geometric_mean, render_table

#: C/C++ SPEC CPU2017 Integer benchmarks (footnote 3 excludes Fortran).
SPEC_BENCHMARKS: Tuple[str, ...] = (
    "500.perlbench", "502.gcc", "505.mcf", "520.omnetpp",
    "523.xalancbmk", "525.x264", "531.deepsjeng", "541.leela",
    "557.xz")

#: Patches evaluated in Figure 5 (those most likely to affect SPEC).
FIGURE5_PATCHES: Tuple[str, ...] = (
    "128134", "142674", "143211", "143636", "157315", "157370",
    "157524", "163108 (1)", "163108 (2)")


@dataclass
class SpecRun:
    """Geomean speedup of one patched compiler vs baseline."""

    label: str
    speedup: float
    per_benchmark: Dict[str, float] = field(default_factory=dict)


@dataclass
class SpecResults:
    runs: List[SpecRun] = field(default_factory=list)
    yearly: Optional[SpecRun] = None
    noise_band: float = 0.02


def _campaign_rng(seed: int, label: str) -> random.Random:
    """Per-campaign rng keyed by a *stable* digest: the built-in
    ``hash()`` is salted per process (PYTHONHASHSEED), which would make
    every run of the campaign produce different Figure 5 numbers."""
    payload = f"{seed}:{label}".encode()
    return random.Random(int.from_bytes(
        hashlib.sha256(payload).digest()[:8], "big"))


def _pattern_density(rng: random.Random) -> float:
    """Fraction of a benchmark's *hot* instructions matching a peephole
    pattern — realistically O(1e-4..1e-3)."""
    return rng.uniform(0.5e-4, 8e-4)


def _median_of_three(rng: random.Random, true_speedup: float,
                     noise_sigma: float) -> float:
    samples = sorted(true_speedup * (1.0 + rng.gauss(0.0, noise_sigma))
                     for _ in range(3))
    return samples[1]


def _measure_patch(seed: int, noise_sigma: float, patch: str) -> SpecRun:
    """One patched-compiler campaign; self-seeded so the per-patch runs
    are order-independent and can fan out over a worker pool."""
    rng = _campaign_rng(seed, patch)
    per_benchmark: Dict[str, float] = {}
    for benchmark in SPEC_BENCHMARKS:
        density = _pattern_density(rng)
        # Removing ~1 cycle per matched instruction out of ~1 IPC
        # hot code: the *true* effect is measured in hundredths of
        # a percent.
        true_speedup = 1.0 + density * rng.uniform(0.3, 1.5)
        per_benchmark[benchmark] = _median_of_three(
            rng, true_speedup, noise_sigma)
    return SpecRun(label=patch,
                   speedup=geometric_mean(list(per_benchmark.values())),
                   per_benchmark=per_benchmark)


def run_spec(seed: int = 0, noise_sigma: float = 0.008,
             jobs: int = 1) -> SpecResults:
    """Simulate the Figure 5 measurement campaign."""
    results = SpecResults()
    scheduler = BatchScheduler(jobs=jobs, backend="thread")
    results.runs = scheduler.map(
        lambda patch: _measure_patch(seed, noise_sigma, patch),
        FIGURE5_PATCHES)
    # Yearly comparison: one year of LLVM ≈ the union of many small
    # patches plus unrelated churn; still inside the noise band.
    rng = _campaign_rng(seed, "yearly")
    per_benchmark = {}
    for benchmark in SPEC_BENCHMARKS:
        true_speedup = 1.0 + rng.uniform(-0.004, 0.012)
        per_benchmark[benchmark] = _median_of_three(rng, true_speedup,
                                                    noise_sigma)
    results.yearly = SpecRun(label="Yearly",
                             speedup=geometric_mean(
                                 list(per_benchmark.values())),
                             per_benchmark=per_benchmark)
    return results


def render_figure5(results: SpecResults) -> str:
    """Render Figure 5 as a table plus an ASCII speedup chart."""
    rows = []
    all_runs = list(results.runs)
    if results.yearly is not None:
        all_runs.append(results.yearly)
    for run in all_runs:
        rows.append((run.label, f"{run.speedup:.4f}x",
                     "within noise" if abs(run.speedup - 1.0)
                     < results.noise_band else "SIGNIFICANT"))
    table = render_table(("Patch", "Geomean Speedup", "Verdict"), rows,
                         title="Figure 5: SPEC CPU2017 Integer geomean "
                               "speedup per patch.")
    chart_lines = ["", "        0.95x      1.00x      1.05x"]
    for run in all_runs:
        offset = int(round((run.speedup - 0.95) / 0.10 * 22))
        offset = max(0, min(offset, 22))
        bar = [" "] * 23
        bar[11] = "|"
        bar[offset] = "*"
        chart_lines.append(f"{run.label:>12}  {''.join(bar)}")
    return table + "\n" + "\n".join(chart_lines)
