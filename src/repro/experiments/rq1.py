"""RQ1 (Table 2): detecting previously reported missed optimizations.

Runs LPO and LPO− with each model over the 25-issue benchmark for N
rounds, plus Souper (default and enum 1-3) and Minotaur once each, and
renders the detection matrix the way Table 2 presents it.

The round loop is the shared campaign engine
(:func:`repro.service.campaign.execute_campaign`): :func:`run_rq1`
executes each round in-process via ``LPOPipeline.run_batch`` while the
optimization service executes the very same
:class:`~repro.service.protocol.CampaignSpec` by scheduling per-window
jobs — so a campaign submitted over the socket reproduces this module's
detection matrix exactly (see :func:`rq1_campaign_spec` /
:func:`campaign_to_rq1_results`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.minotaur import Minotaur
from repro.baselines.souper import Souper
from repro.core.cache import ResultCache
from repro.core.pipeline import LPOPipeline, PipelineConfig, window_from_text
from repro.corpus.issues import IssueCase, rq1_cases
from repro.experiments.tables import format_count_cell, render_table
from repro.llm.backends import resolve_client
from repro.llm.profiles import RQ1_MODELS, ModelProfile
from repro.service.campaign import (
    CampaignLeg,
    RoundOutcome,
    execute_campaign,
)
from repro.service.protocol import CampaignResult, CampaignSpec


@dataclass
class RQ1Config:
    """Experiment parameters (paper defaults unless noted)."""

    rounds: int = 5
    models: Sequence[ModelProfile] = RQ1_MODELS
    cases: Sequence[IssueCase] = ()
    souper_timeout: float = 10.0         # scaled down from 20 minutes
    enum_values: Sequence[int] = (1, 2, 3)
    include_baselines: bool = True
    attempt_limit: int = 2
    seed: int = 0
    jobs: int = 1                        # worker pool width per round
    cache: Optional[ResultCache] = None  # shared across models/variants

    def resolved_cases(self) -> Sequence[IssueCase]:
        return self.cases if self.cases else rq1_cases()


@dataclass
class RQ1Results:
    """The full detection matrix."""

    rounds: int
    #: (model name, variant) -> issue id -> detection count over rounds
    lpo_counts: Dict[Tuple[str, str], Dict[int, int]] = field(
        default_factory=dict)
    souper_default: Dict[int, bool] = field(default_factory=dict)
    souper_enum: Dict[int, bool] = field(default_factory=dict)
    minotaur: Dict[int, bool] = field(default_factory=dict)
    issue_ids: List[int] = field(default_factory=list)

    # -- aggregates (the Average / Total rows) ---------------------------
    def average_per_round(self, model: str, variant: str) -> float:
        counts = self.lpo_counts.get((model, variant), {})
        return sum(counts.values()) / max(self.rounds, 1)

    def total_detected(self, model: str, variant: str) -> int:
        counts = self.lpo_counts.get((model, variant), {})
        return sum(1 for count in counts.values() if count > 0)

    def souper_total(self) -> int:
        detected = {issue for issue, hit in self.souper_default.items()
                    if hit}
        detected |= {issue for issue, hit in self.souper_enum.items()
                     if hit}
        return len(detected)

    def minotaur_total(self) -> int:
        return sum(1 for hit in self.minotaur.values() if hit)


def rq1_campaign_spec(config: Optional[RQ1Config] = None
                      ) -> CampaignSpec:
    """The RQ1 experiment as a service-submittable campaign."""
    config = config if config is not None else RQ1Config()
    cases = config.resolved_cases()
    return CampaignSpec(
        windows=[case.src for case in cases],
        case_ids=[str(case.issue_id) for case in cases],
        rounds=config.rounds,
        models=[profile.name for profile in config.models],
        variants=[["LPO-", 1], ["LPO", config.attempt_limit]],
    )


def run_rq1(config: Optional[RQ1Config] = None) -> RQ1Results:
    """Run the full RQ1 experiment (in-process)."""
    config = config if config is not None else RQ1Config()
    cases = config.resolved_cases()
    results = RQ1Results(rounds=config.rounds,
                         issue_ids=[case.issue_id for case in cases])

    # opt/verify outcomes depend only on window and candidate digests,
    # never on the model, so one cache serves every model/variant leg.
    cache = config.cache if config.cache is not None else ResultCache()
    windows = [window_from_text(case.src) for case in cases]
    profiles = {profile.name: profile for profile in config.models}
    pipelines: Dict[CampaignLeg, LPOPipeline] = {}

    def run_round(leg: CampaignLeg, round_index: int,
                  round_seed: int) -> List[RoundOutcome]:
        pipeline = pipelines.get(leg)
        if pipeline is None:
            # The one model-resolution path: registered profiles go
            # through the backend registry by name; ad-hoc profiles
            # are wrapped directly (both bit-identical to the seed
            # SimulatedLLM construction — tests pin Table 2 counts).
            client = resolve_client(profiles[leg.model],
                                    seed=config.seed)
            pipeline = LPOPipeline(client, PipelineConfig(
                attempt_limit=leg.attempt_limit), cache=cache)
            pipelines[leg] = pipeline
        stats = getattr(pipeline.client, "stats", None)
        cost_before = (stats.usage.cost_usd if stats is not None
                       else 0.0)
        outcomes = pipeline.run_batch(windows, round_seed=round_seed,
                                      jobs=config.jobs)
        # Spend is accounted per round (the batch is one wavefront);
        # the whole round delta rides the first outcome — only the
        # campaign-level sum is meaningful.
        round_cost = (max(0.0, stats.usage.cost_usd - cost_before)
                      if stats is not None else 0.0)
        return [RoundOutcome(found=outcome.found,
                             cost_usd=round_cost if index == 0 else 0.0)
                for index, outcome in enumerate(outcomes)]

    campaign = execute_campaign(rq1_campaign_spec(config), run_round)
    for key, counts in campaign.counts.items():
        model, variant = CampaignResult.split_leg_key(key)
        results.lpo_counts[(model, variant)] = {
            int(case_id): count for case_id, count in counts.items()}

    if config.include_baselines:
        for case in cases:
            function = case.src_function()
            default = Souper(enum=0,
                             timeout_seconds=config.souper_timeout)
            results.souper_default[case.issue_id] = (
                default.optimize(function).detected)
            enum_hit = False
            for enum in config.enum_values:
                souper = Souper(enum=enum,
                                timeout_seconds=config.souper_timeout)
                if souper.optimize(function).detected:
                    enum_hit = True
                    break
            results.souper_enum[case.issue_id] = enum_hit
            results.minotaur[case.issue_id] = (
                Minotaur().optimize(function).detected)
    return results


def campaign_to_rq1_results(campaign: CampaignResult) -> RQ1Results:
    """View a service campaign's aggregate as :class:`RQ1Results`
    (baseline columns stay empty — campaigns run LPO legs only), so
    the same Table 2 renderer serves both paths."""
    results = RQ1Results(
        rounds=campaign.rounds,
        issue_ids=[int(case_id) if case_id.isdigit() else case_id
                   for case_id in campaign.case_ids])
    for key, counts in campaign.counts.items():
        model, variant = CampaignResult.split_leg_key(key)
        results.lpo_counts[(model, variant)] = {
            (int(case_id) if case_id.isdigit() else case_id): count
            for case_id, count in counts.items()}
    return results


def _column_legs(results: RQ1Results,
                 models: Optional[Sequence[ModelProfile]]
                 ) -> List[Tuple[str, str]]:
    """The (model, variant) columns to render, in Table 2 order.

    With explicit ``models`` (profiles or names), each gets the paper's
    LPO−/LPO pair.  Otherwise columns come from the models/variants
    actually present in ``results.lpo_counts`` — a custom-model run
    renders its own columns instead of the default set's empty ones —
    with the paper's models first, in the paper's order.
    """
    if models is not None:
        names = [getattr(profile, "name", profile)
                 for profile in models]
        variants: Sequence[str] = ("LPO-", "LPO")
    else:
        present = list(dict.fromkeys(
            model for model, _variant in results.lpo_counts))
        paper = [profile.name for profile in RQ1_MODELS]
        names = ([name for name in paper if name in present]
                 + [name for name in present if name not in paper])
        variants = tuple(dict.fromkeys(
            variant for _model, variant in results.lpo_counts))
    return [(name, variant) for name in names for variant in variants]


def render_table2(results: RQ1Results,
                  models: Optional[Sequence[ModelProfile]] = None
                  ) -> str:
    """Render the detection matrix in Table 2's layout.

    Columns default to the models present in ``results.lpo_counts``
    (paper order first); pass ``models`` to force a column set.
    """
    legs = _column_legs(results, models)
    headers: List[str] = ["Issue ID"]
    headers += [f"{model} {variant}" for model, variant in legs]
    headers += ["SouperDef", "SouperEnum", "Minotaur"]

    rows: List[List[str]] = []
    for issue_id in results.issue_ids:
        row: List[str] = [str(issue_id)]
        for model, variant in legs:
            counts = results.lpo_counts.get((model, variant), {})
            row.append(format_count_cell(counts.get(issue_id, 0),
                                         results.rounds))
        row.append("Y" if results.souper_default.get(issue_id) else "")
        row.append("Y" if results.souper_enum.get(issue_id) else "")
        row.append("Y" if results.minotaur.get(issue_id) else "")
        rows.append(row)

    average_row: List[str] = ["Average"]
    total_row: List[str] = ["Total"]
    for model, variant in legs:
        average_row.append(
            f"{results.average_per_round(model, variant):.1f}")
        total_row.append(str(results.total_detected(model, variant)))
    average_row += ["N/A", "N/A", "N/A"]
    souper_default_total = sum(
        1 for hit in results.souper_default.values() if hit)
    souper_enum_total = sum(
        1 for hit in results.souper_enum.values() if hit)
    total_row += [str(souper_default_total), str(souper_enum_total),
                  str(results.minotaur_total())]
    rows.append(average_row)
    rows.append(total_row)
    return render_table(
        headers, rows,
        title=("Table 2: detections over "
               f"{results.rounds} rounds per model/variant."))
