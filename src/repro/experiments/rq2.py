"""RQ2 (Table 3): the 62 missed optimizations found by LPO.

Statuses come from the dataset ground truth; the Souper and Minotaur
columns are computed by running the baselines on each issue's window.
The runner also demonstrates discovery end-to-end: the pipeline runs
over a generated corpus and reports how many distinct planted issues it
rediscovers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.baselines.minotaur import Minotaur
from repro.baselines.souper import Souper
from repro.corpus.issues_rq2 import rq2_cases
from repro.experiments.tables import render_table


@dataclass
class RQ2Config:
    souper_timeout: float = 10.0
    enum_values: Sequence[int] = (1, 2, 3)
    seed: int = 0


@dataclass
class RQ2Row:
    issue_id: int
    status: str
    souper_default: bool
    souper_enum: str               # "", "Y" or "timeout"
    minotaur: bool


@dataclass
class RQ2Results:
    rows: List[RQ2Row] = field(default_factory=list)

    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for row in self.rows:
            counts[row.status] = counts.get(row.status, 0) + 1
        return counts

    def souper_default_total(self) -> int:
        return sum(1 for row in self.rows if row.souper_default)

    def souper_enum_total(self) -> int:
        return sum(1 for row in self.rows if row.souper_enum == "Y")

    def minotaur_total(self) -> int:
        return sum(1 for row in self.rows if row.minotaur)

    def confirmed_or_fixed_detected(self, tool: str) -> int:
        total = 0
        for row in self.rows:
            if row.status not in ("Confirmed", "Fixed"):
                continue
            if tool == "souper_default" and row.souper_default:
                total += 1
            elif tool == "souper_enum" and row.souper_enum == "Y":
                total += 1
            elif tool == "minotaur" and row.minotaur:
                total += 1
        return total


def run_rq2(config: Optional[RQ2Config] = None) -> RQ2Results:
    config = config if config is not None else RQ2Config()
    results = RQ2Results()
    for case in rq2_cases():
        function = case.src_function()
        default = Souper(enum=0, timeout_seconds=config.souper_timeout,
                         seed=config.seed)
        default_hit = default.optimize(function).detected
        enum_cell = ""
        timed_out = False
        for enum in config.enum_values:
            souper = Souper(enum=enum,
                            timeout_seconds=config.souper_timeout,
                            seed=config.seed)
            outcome = souper.optimize(function)
            if outcome.detected:
                enum_cell = "Y"
                break
            if outcome.status == "timeout":
                timed_out = True
        if not enum_cell and timed_out:
            enum_cell = "timeout"
        minotaur_hit = Minotaur().optimize(function).detected
        results.rows.append(RQ2Row(
            issue_id=case.issue_id,
            status=case.status,
            souper_default=default_hit,
            souper_enum=enum_cell,
            minotaur=minotaur_hit))
    return results


def render_table3(results: RQ2Results) -> str:
    rows = []
    for row in results.rows:
        rows.append((str(row.issue_id), row.status,
                     "Y" if row.souper_default else "",
                     row.souper_enum,
                     "Y" if row.minotaur else ""))
    counts = results.status_counts()
    summary = (f"{sum(counts.values())} issues: "
               f"{counts.get('Confirmed', 0)} confirmed, "
               f"{counts.get('Fixed', 0)} fixed, "
               f"{counts.get('Duplicate', 0)} duplicates, "
               f"{counts.get('Wontfix', 0)} wontfix, "
               f"{counts.get('Unconfirmed', 0)} unconfirmed. "
               f"SouperDefault {results.souper_default_total()}, "
               f"SouperEnum {results.souper_enum_total()}, "
               f"Minotaur {results.minotaur_total()}.")
    table = render_table(
        ("Issue ID", "Status", "SouperDef", "SouperEnum", "Minotaur"),
        rows,
        title="Table 3: missed optimizations found by LPO.")
    return table + "\n" + summary


@dataclass
class DiscoveryReport:
    """End-to-end discovery over a generated corpus (RQ2's process)."""

    windows_extracted: int = 0
    duplicates_removed: int = 0
    findings: int = 0
    distinct_issues: List[int] = field(default_factory=list)


def run_discovery(model_name: str = "Llama3.3",
                  projects: Optional[Sequence[str]] = None,
                  modules_per_project: int = 2,
                  max_windows: int = 120,
                  seed: int = 0,
                  jobs: int = 1,
                  cache=None) -> DiscoveryReport:
    """Run the full LPO loop over a generated corpus sample.

    This is the miniature of the paper's eleven-month campaign: extract,
    dedup, batch the windows through the pipeline (``jobs`` wide), and
    count distinct planted issues rediscovered.  A persistent ``cache``
    (:class:`~repro.core.cache.ResultCache`) lets re-runs skip every
    already-verified digest.
    """
    from repro.core.extractor import ExtractionStats, extract_from_corpus
    from repro.core.pipeline import LPOPipeline, PipelineConfig
    from repro.corpus.generator import generate_corpus
    from repro.llm.backends import resolve_client
    from repro.llm.knowledge import default_knowledge_base

    corpus = generate_corpus(projects=projects, seed=seed,
                             modules_per_project=modules_per_project)
    stats = ExtractionStats()
    windows = extract_from_corpus(corpus, stats=stats)
    windows = windows[:max_windows]
    client = resolve_client(model_name, seed=seed)
    pipeline = LPOPipeline(client, PipelineConfig(), cache=cache)
    knowledge = default_knowledge_base()
    report = DiscoveryReport(
        windows_extracted=stats.emitted,
        duplicates_removed=stats.duplicates)
    seen_issues = set()
    outcomes = pipeline.run_batch(windows, round_seed=seed, jobs=jobs)
    for window, outcome in zip(windows, outcomes):
        if not outcome.found:
            continue
        report.findings += 1
        entry = knowledge.lookup(window.function)
        if entry is not None and entry.issue_id not in seen_issues:
            seen_issues.add(entry.issue_id)
    report.distinct_issues = sorted(seen_issues)
    return report
