"""Table 5: impact of the accepted patches on the corpus.

For each fixed issue's patch we report:

* **#IR files** — corpus modules where enabling the patch lets the
  optimizer rewrite at least one function;
* **#Projects** — distinct projects those modules belong to;
* **Δ compile time** — change in the deterministic ``rules_tried``
  pattern-match counter (the stand-in for the compile-time tracker's
  ``instruction:u``), in percent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.scheduler import BatchScheduler
from repro.corpus.generator import generate_corpus, project_of_module
from repro.experiments.tables import render_table
from repro.ir.function import Module
from repro.opt.driver import patch_rules
from repro.opt.engine import CombineStats, InstCombine

#: The fixed issues Table 5 reports on (157371 and 163108 landed as two
#: patches each in the paper; our reproduction has one rule per issue).
FIXED_ISSUE_IDS = (128134, 133367, 142674, 142711, 143211, 143636,
                   154238, 157315, 157370, 157371, 157524, 163108,
                   166973)


@dataclass
class PatchImpact:
    issue_id: int
    ir_files: int = 0
    projects: int = 0
    compile_time_delta_percent: float = 0.0


@dataclass
class ImpactResults:
    rows: List[PatchImpact] = field(default_factory=list)
    baseline_rules_tried: int = 0


def _optimize_corpus(corpus: Sequence[Module],
                     patches) -> Dict[str, int]:
    """Run the optimizer over every function; returns per-module rewrite
    counts, and accumulates ``rules_tried`` into the returned stats."""
    stats = CombineStats()
    changed_per_module: Dict[str, int] = {}
    combiner = InstCombine(extra_rules=patches)
    for module in corpus:
        changed = 0
        for function in module.functions:
            copy = function.clone()
            before = copy.instruction_count()
            combiner.run(copy, stats=stats)
            if copy.instruction_count() < before:
                changed += 1
        changed_per_module[module.name] = changed
    changed_per_module["__rules_tried__"] = stats.rules_tried
    return changed_per_module


def run_impact(seed: int = 0,
               modules_per_project: int = 3,
               issue_ids: Sequence[int] = FIXED_ISSUE_IDS,
               jobs: int = 1) -> ImpactResults:
    corpus = generate_corpus(seed=seed,
                             modules_per_project=modules_per_project)
    baseline = _optimize_corpus(corpus, patches=())
    baseline_tried = baseline.pop("__rules_tried__")
    results = ImpactResults(baseline_rules_tried=baseline_tried)

    # Each patched sweep clones the corpus functions it optimizes, so
    # the per-issue sweeps are independent and can fan out over a pool.
    def sweep(issue_id: int):
        return _optimize_corpus(corpus, patches=patch_rules([issue_id]))

    scheduler = BatchScheduler(jobs=jobs, backend="thread")
    sweeps = scheduler.map(sweep, list(issue_ids))

    for issue_id, with_patch in zip(issue_ids, sweeps):
        patched_tried = with_patch.pop("__rules_tried__")
        impacted_modules = []
        for module in corpus:
            if with_patch[module.name] > baseline[module.name]:
                impacted_modules.append(module)
        projects = {project_of_module(module)
                    for module in impacted_modules}
        delta = 0.0
        if baseline_tried:
            delta = 100.0 * (patched_tried - baseline_tried) / baseline_tried
        results.rows.append(PatchImpact(
            issue_id=issue_id,
            ir_files=len(impacted_modules),
            projects=len(projects),
            compile_time_delta_percent=delta))
    return results


def render_table5(results: ImpactResults) -> str:
    rows = []
    for row in results.rows:
        rows.append((str(row.issue_id), str(row.ir_files),
                     str(row.projects),
                     f"{row.compile_time_delta_percent:+.2f}%"))
    return render_table(
        ("ID", "#IR Files", "#Projects", "d Compile Time (rules tried)"),
        rows,
        title="Table 5: impacted IR files/projects per accepted patch.")
