"""RQ3 (Table 4): throughput and cost of LPO vs Souper.

The paper samples 5,000 windows from the corpus and measures seconds per
case for LPO (local Llama3.3 and API Gemini2.5) and Souper at enum
0/1/2/3 with a 20-minute per-case timeout.

Offline, time per LPO case = measured pipeline compute + the *modelled*
serving latency of the simulated LLM (that is where the real cost is);
Souper numbers are measured wall-clock of the synthesis.  Case counts
and timeouts are configurable so the benchmark harness can run a scaled
sample quickly and the full experiment reproducibly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.baselines.souper import Souper
from repro.core.cache import ResultCache
from repro.core.extractor import Window, extract_from_corpus
from repro.core.pipeline import LPOPipeline, PipelineConfig
from repro.corpus.generator import generate_corpus
from repro.experiments.tables import render_table
from repro.llm.backends import resolve_client
from repro.llm.profiles import GEMINI25, LLAMA33, ModelProfile


@dataclass
class RQ3Config:
    cases: int = 150                  # scaled sample (paper: 5,000)
    modules_per_project: int = 2
    souper_timeout: float = 10.0      # scaled (paper: 20 minutes)
    enum_values: Sequence[int] = (1, 2, 3)
    models: Sequence[ModelProfile] = (LLAMA33, GEMINI25)
    seed: int = 0
    #: LPO worker pool width. Speeds up wall-clock only; keep 1 when
    #: the per-case timing numbers matter (with jobs>1 each window's
    #: timer also counts time spent waiting on the GIL).
    jobs: int = 1
    #: Optional explicit cache shared across the LPO legs. Leave None
    #: for Table 4 runs: each leg then gets its own cold cache, so a
    #: later model's per-case seconds don't silently exclude opt/verify
    #: work an earlier leg already paid for.
    cache: Optional[ResultCache] = None


@dataclass
class ToolThroughput:
    tool: str
    cases: int = 0
    total_seconds: float = 0.0        # compute + modelled latency
    timeouts: int = 0
    total_cost_usd: float = 0.0
    findings: int = 0

    @property
    def seconds_per_case(self) -> float:
        return self.total_seconds / max(self.cases, 1)


@dataclass
class RQ3Results:
    tools: List[ToolThroughput] = field(default_factory=list)

    def by_tool(self) -> Dict[str, ToolThroughput]:
        return {tool.tool: tool for tool in self.tools}


def sample_windows(config: RQ3Config) -> List[Window]:
    corpus = generate_corpus(
        seed=config.seed, modules_per_project=config.modules_per_project)
    windows = extract_from_corpus(corpus)
    return windows[: config.cases]


def run_rq3(config: Optional[RQ3Config] = None) -> RQ3Results:
    config = config if config is not None else RQ3Config()
    windows = sample_windows(config)
    results = RQ3Results()

    for profile in config.models:
        cache = (config.cache if config.cache is not None
                 else ResultCache())
        client = resolve_client(profile, seed=config.seed)
        pipeline = LPOPipeline(client, PipelineConfig(), cache=cache)
        throughput = ToolThroughput(
            tool=f"LPO/{profile.name}", cases=len(windows))
        outcomes = pipeline.run_batch(windows, round_seed=config.seed,
                                      jobs=config.jobs)
        for outcome in outcomes:
            # Per-case compute comes from each window's own timer; at
            # jobs>1 those spans include GIL contention, so per-case
            # seconds are only comparable at jobs=1 (the Table 4
            # default). The modelled serving latency dominates anyway.
            throughput.total_seconds += (outcome.elapsed_seconds
                                         + outcome.usage.latency_seconds)
            throughput.total_cost_usd += outcome.usage.cost_usd
            throughput.findings += int(outcome.found)
        results.tools.append(throughput)

    default = ToolThroughput(tool="Souper default", cases=len(windows))
    souper0 = Souper(enum=0, timeout_seconds=config.souper_timeout,
                     seed=config.seed)
    for window in windows:
        outcome = souper0.optimize(window.function)
        default.total_seconds += outcome.elapsed_seconds
        default.timeouts += int(outcome.status == "timeout")
        default.findings += int(outcome.detected)
    results.tools.append(default)

    for enum in config.enum_values:
        throughput = ToolThroughput(tool=f"Souper enum={enum}",
                                    cases=len(windows))
        souper = Souper(enum=enum, timeout_seconds=config.souper_timeout,
                        seed=config.seed)
        for window in windows:
            outcome = souper.optimize(window.function)
            throughput.total_seconds += outcome.elapsed_seconds
            throughput.timeouts += int(outcome.status == "timeout")
            throughput.findings += int(outcome.detected)
        results.tools.append(throughput)
    return results


def render_table4(results: RQ3Results) -> str:
    headers = ("Tool", "Time/Case (s)", "# of Timeouts", "Cost (USD)",
               "Findings")
    rows = []
    for tool in results.tools:
        cost = f"{tool.total_cost_usd:.2f}" if tool.total_cost_usd else "-"
        rows.append((tool.tool, f"{tool.seconds_per_case:.2f}",
                     str(tool.timeouts), cost, str(tool.findings)))
    return render_table(
        headers, rows,
        title=("Table 4: average per-case execution time "
               "(LPO time includes modelled LLM serving latency)."))
