"""Table rendering helpers shared by the experiment runners."""

from __future__ import annotations

from typing import List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 title: str = "") -> str:
    """Monospace table with column alignment (markdown-ish)."""
    columns = len(headers)
    widths = [len(h) for h in headers]
    for row in rows:
        for index in range(columns):
            cell = str(row[index]) if index < len(row) else ""
            widths[index] = max(widths[index], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        padded = []
        for index in range(columns):
            cell = str(cells[index]) if index < len(cells) else ""
            padded.append(cell.ljust(widths[index]))
        return "| " + " | ".join(padded) + " |"

    separator = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append(separator)
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def check_mark(flag: bool) -> str:
    return "Y" if flag else ""


def render_table1() -> str:
    """Table 1: the selected LLMs."""
    from repro.llm.profiles import ALL_MODELS
    rows = []
    for profile in ALL_MODELS:
        rows.append((profile.name, profile.version,
                     "Yes" if profile.reasoning else "No",
                     profile.cutoff))
    return render_table(
        ("Model Name", "Model Version", "Reasoning", "Cut-off Date"),
        rows,
        title="Table 1: The selected LLMs in evaluation.")


def format_count_cell(count: int, rounds: int) -> str:
    """Table 2 cell: empty when never detected, else the success count."""
    if count <= 0:
        return ""
    return str(count)


def geometric_mean(values: Sequence[float]) -> float:
    product = 1.0
    count = 0
    for value in values:
        if value > 0:
            product *= value
            count += 1
    if count == 0:
        return 1.0
    return product ** (1.0 / count)
