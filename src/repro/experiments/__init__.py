"""Experiment runners: one per paper table/figure."""

from repro.experiments.impact import (
    FIXED_ISSUE_IDS,
    ImpactResults,
    PatchImpact,
    render_table5,
    run_impact,
)
from repro.experiments.rq1 import (
    RQ1Config,
    RQ1Results,
    campaign_to_rq1_results,
    render_table2,
    rq1_campaign_spec,
    run_rq1,
)
from repro.experiments.rq2 import (
    DiscoveryReport,
    RQ2Config,
    RQ2Results,
    render_table3,
    run_discovery,
    run_rq2,
)
from repro.experiments.rq3 import (
    RQ3Config,
    RQ3Results,
    ToolThroughput,
    render_table4,
    run_rq3,
    sample_windows,
)
from repro.experiments.spec import (
    SPEC_BENCHMARKS,
    SpecResults,
    SpecRun,
    render_figure5,
    run_spec,
)
from repro.experiments.tables import render_table, render_table1

__all__ = [
    "FIXED_ISSUE_IDS", "ImpactResults", "PatchImpact", "render_table5",
    "run_impact",
    "RQ1Config", "RQ1Results", "campaign_to_rq1_results",
    "render_table2", "rq1_campaign_spec", "run_rq1",
    "DiscoveryReport", "RQ2Config", "RQ2Results", "render_table3",
    "run_discovery", "run_rq2",
    "RQ3Config", "RQ3Results", "ToolThroughput", "render_table4",
    "run_rq3", "sample_windows",
    "SPEC_BENCHMARKS", "SpecResults", "SpecRun", "render_figure5",
    "run_spec",
    "render_table", "render_table1",
]
